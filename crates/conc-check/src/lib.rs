//! The workspace's model-checked concurrency regression suite.
//!
//! Every protocol the codebase routes through the sync facade
//! (`retypd_core::sync`) is a claim: *this ordering discipline is
//! sufficient*. This crate turns the important claims into bounded
//! model checks — each [`ModelDef`] is a small closed model whose
//! interleavings the vendored checker ([`loom`]) explores exhaustively
//! under a preemption bound, with vector-clock happens-before tracking
//! and a replayable schedule string on failure.
//!
//! Two registries:
//!
//! - [`registry`] — every model valid in the current build. The
//!   *abstract* models (message-passing publication, the drain/ack
//!   handshake, relaxed counters) use [`loom::modelled`] directly and
//!   are always compiled, so a plain `cargo test` already runs the
//!   checker against the protocols' shapes. The *product* models
//!   (Interner double-miss, `Admission`, `ShardStatsCells`, telemetry
//!   `Histogram`) exercise the real production types and therefore
//!   need the whole dependency tree compiled with
//!   `--cfg retypd_model_check`, which swaps the facade from std
//!   re-exports to the modelled doubles.
//! - [`mutations`] — deliberately broken variants (a weakened store, a
//!   lost wakeup) that the checker **must** catch. They pin the
//!   checker's teeth: if a mutation stops failing, the model checker
//!   itself has rotted and no green "models pass" result means
//!   anything.
//!
//! The `conc-check` binary runs both registries with a fixed seed and
//! emits a JSON run-stats report (per-model interleaving counts,
//! completeness, mutation schedules); CI archives it next to the bench
//! and fuzz smoke artifacts.

use loom::{Builder, Report};

/// One named model: a closed concurrent scenario the checker explores.
pub struct ModelDef {
    /// Stable identifier (used in test names and the JSON report).
    pub name: &'static str,
    /// What the model checks, one line.
    pub what: &'static str,
    /// Preemption bound to explore under. Tuned per model so the
    /// bounded schedule space stays both meaningful (≥1000 distinct
    /// interleavings for the passing models) and tractable.
    pub preemption_bound: u32,
    /// Per-model iteration cap. Most models exhaust their bounded
    /// space well below it; a model whose space is combinatorial (ten
    /// relaxed stores racing ten relaxed loads, each load free to
    /// observe several buffered values) declares a smaller cap and is
    /// explored to exactly that depth instead. Either way the run is
    /// deterministic: [`Report::complete`] says which case happened.
    pub cap: u64,
    /// The model body: one execution of the closed scenario. The
    /// checker runs it under every explored schedule.
    pub body: fn(),
}

impl ModelDef {
    /// Explores the model with this suite's conventions: the given
    /// seed, the model's preemption bound, and an iteration cap.
    pub fn check(&self, seed: u64, max_iterations: u64) -> Report {
        Builder::new()
            .seed(seed)
            .preemption_bound(self.preemption_bound)
            .max_iterations(self.cap.min(max_iterations))
            .check(self.body)
    }

    /// Replays exactly one schedule string (from a failure report)
    /// against the model body.
    pub fn replay(&self, schedule: &str) -> Report {
        Builder::new().replay(schedule, self.body)
    }
}

/// The default seed for CI runs and tests: fixed, so the exploration
/// order (and any failure schedule) is bit-identical across machines.
pub const DEFAULT_SEED: u64 = 1;

/// Default iteration cap, generous enough that every registry model
/// either exhausts its bounded space or reaches its own declared
/// [`ModelDef::cap`] (the self-check tests assert exactly that
/// dichotomy via the report's `complete` field).
pub const DEFAULT_MAX_ITERATIONS: u64 = 50_000;

// ---------------------------------------------------------------------------
// Abstract models: always compiled, loom::modelled used explicitly.

/// Release/acquire message passing: the pattern behind every
/// "publish a value, flip a flag" protocol in the workspace (store
/// writer gauges, drain flags). The reader may only touch the plain
/// data after an acquire load observes the release store.
fn mp_publish() {
    use loom::cell::RaceCell;
    use loom::modelled::sync::atomic::{AtomicBool, Ordering};
    use loom::modelled::sync::Arc;
    use loom::modelled::thread;
    // Two independent (data, flag) publication slots, one writer each:
    // the reader polls both flags and may consume the slots in either
    // order, so the schedule space covers the cross-product of the two
    // protocols' interleavings.
    let slots: Vec<_> = (0..2u64)
        .map(|i| Arc::new((RaceCell::new(0u64), AtomicBool::new(false), 42 + i)))
        .collect();
    let writers: Vec<_> = slots
        .iter()
        .map(|slot| {
            let slot = Arc::clone(slot);
            thread::spawn(move || {
                // SAFETY: readers access the cell only after observing
                // the release store below via an acquire load; the
                // model checks exactly that.
                unsafe { slot.0.with_mut(|d| *d = slot.2) };
                slot.1.store(true, Ordering::Release);
            })
        })
        .collect();
    for slot in &slots {
        if slot.1.load(Ordering::Acquire) {
            // SAFETY: the acquire load saw the release store, so the
            // writer's mutation happens-before this read (model-checked).
            let v = unsafe { slot.0.with(|d| *d) };
            assert_eq!(v, slot.2, "acquire read must see the published value");
        }
    }
    for w in writers {
        w.join().unwrap();
    }
    for slot in &slots {
        // SAFETY: both writers are joined, so their mutations
        // happen-before these reads (model-checked).
        let v = unsafe { slot.0.with(|d| *d) };
        assert_eq!(v, slot.2, "post-join read must see the final value");
    }
}

/// MUTATION of [`mp_publish`]: the flag store weakened from `Release`
/// to `Relaxed`. The reader's acquire load no longer synchronizes with
/// the write, so the cell access is a data race — the checker must
/// find an interleaving that proves it.
fn mp_publish_weakened() {
    use loom::modelled::sync::atomic::{AtomicBool, Ordering};
    use loom::modelled::sync::Arc;
    use loom::modelled::thread;
    let data = Arc::new(loom::cell::RaceCell::new(0u64));
    let flag = Arc::new(AtomicBool::new(false));
    let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
    let writer = thread::spawn(move || {
        // SAFETY: deliberately NOT upheld — the weakened store below
        // breaks the protocol, and the model must say so.
        unsafe { d2.with_mut(|d| *d = 42) };
        f2.store(true, Ordering::Relaxed); // the mutation
    });
    if flag.load(Ordering::Acquire) {
        // SAFETY: deliberately NOT upheld (see above).
        let v = unsafe { data.with(|d| *d) };
        assert_eq!(v, 42);
    }
    writer.join().unwrap();
}

/// The serve shutdown-ack handshake (the PR-4 race, abstracted): the
/// drainer must observe the worker's ack exactly once, with the flag
/// and the wait under one mutex and the wait in a predicate loop.
fn handshake_ack() {
    use loom::modelled::sync::{Arc, Condvar, Mutex};
    use loom::modelled::thread;
    // Two workers ack under one mutex (the serve drain joins every
    // shard); the drainer's predicate loop must absorb the acks in any
    // arrival order, including both before it first takes the lock.
    let state = Arc::new((Mutex::new(0u32), Condvar::new()));
    let workers: Vec<_> = (0..2)
        .map(|_| {
            let s = Arc::clone(&state);
            thread::spawn(move || {
                let (lock, cv) = &*s;
                *lock.lock().unwrap() += 1;
                cv.notify_one();
            })
        })
        .collect();
    let (lock, cv) = &*state;
    let mut acks = lock.lock().unwrap();
    while *acks < 2 {
        acks = cv.wait(acks).unwrap();
    }
    drop(acks);
    for w in workers {
        w.join().unwrap();
    }
}

/// MUTATION of [`handshake_ack`]: the ack flag moved *outside* the
/// mutex (an atomic), reintroducing the lost-wakeup window — the
/// worker can store + notify between the drainer's flag check and its
/// wait, and nobody ever wakes the drainer. The checker must find the
/// deadlock.
fn handshake_lost_wakeup() {
    use loom::modelled::sync::atomic::{AtomicBool, Ordering};
    use loom::modelled::sync::{Arc, Condvar, Mutex};
    use loom::modelled::thread;
    let flag = Arc::new(AtomicBool::new(false));
    let state = Arc::new((Mutex::new(()), Condvar::new()));
    let (f2, s2) = (Arc::clone(&flag), Arc::clone(&state));
    let worker = thread::spawn(move || {
        f2.store(true, Ordering::Release);
        s2.1.notify_one();
    });
    let (lock, cv) = &*state;
    let guard = lock.lock().unwrap();
    if !flag.load(Ordering::Acquire) {
        // The mutation: check-then-wait with the flag outside the
        // mutex. If the notify lands in between, this waits forever.
        drop(cv.wait(guard).unwrap());
    } else {
        drop(guard);
    }
    worker.join().unwrap();
}

/// Relaxed counters (the driver/serve accounting idiom): concurrent
/// `fetch_add`s from three threads never lose an increment, and the
/// post-join read sees the exact total.
fn relaxed_counter_total() {
    use loom::modelled::sync::atomic::{AtomicU64, Ordering};
    use loom::modelled::sync::Arc;
    use loom::modelled::thread;
    let n = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..3)
        .map(|_| {
            let n = Arc::clone(&n);
            thread::spawn(move || {
                n.fetch_add(1, Ordering::Relaxed);
                n.fetch_add(1, Ordering::Relaxed);
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(n.load(Ordering::Relaxed), 6, "RMWs must not lose increments");
}

// ---------------------------------------------------------------------------
// Product models: the real types, checkable only when the whole tree
// is compiled with `--cfg retypd_model_check` (facade → doubles).

/// Interner double-miss (the PR-1 protocol, per `crates/core/src/intern.rs`):
/// two threads miss on the same key concurrently; the write-lock
/// re-check must make exactly one insert win, and both callers must
/// get the same canonical pointer.
#[cfg(retypd_model_check)]
fn interner_double_miss() {
    use loom::modelled::sync::Arc;
    use loom::modelled::thread;
    use retypd_core::Interner;
    let interner = Arc::new(Interner::new());
    let (i1, i2) = (Arc::clone(&interner), Arc::clone(&interner));
    let t1 = thread::spawn(move || i1.intern("rax").as_ptr() as usize);
    let t2 = thread::spawn(move || i2.intern("rax").as_ptr() as usize);
    let p1 = t1.join().unwrap();
    let p2 = t2.join().unwrap();
    assert_eq!(p1, p2, "double miss must canonicalize to one allocation");
    assert_eq!(interner.len(), 1, "exactly one insert may win");
}

/// Telemetry histogram (the PR-6 record path): lock-free concurrent
/// `record`s with a concurrent snapshot. Mid-flight snapshots may lag
/// (documented), but never over-count, and the post-join snapshot is
/// exact.
#[cfg(retypd_model_check)]
fn histogram_concurrent_record() {
    use loom::modelled::sync::Arc;
    use loom::modelled::thread;
    use retypd_telemetry::Histogram;
    let h = Arc::new(Histogram::new());
    let (h1, h2) = (Arc::clone(&h), Arc::clone(&h));
    let t1 = thread::spawn(move || h1.record(3));
    let t2 = thread::spawn(move || h2.record(300));
    // Mid-flight probe: `count` may lag the in-flight records but can
    // never over-count. (A full snapshot here would read all 64 bucket
    // atomics concurrently with the recorders and blow the bounded
    // schedule space; the post-join snapshot below covers the rest.)
    assert!(h.count() <= 2, "count can lag but never over-count");
    t1.join().unwrap();
    t2.join().unwrap();
    let fin = h.snapshot();
    assert_eq!(fin.count, 2);
    assert_eq!(fin.sum, 303);
    assert_eq!(fin.buckets.iter().sum::<u64>(), 2);
}

/// Admission CAS loop (the PR-3 gate, `retypd_serve::admission`): a
/// batch either gets all its slots or none, the gate never exceeds its
/// limit in any interleaving, and every admitted slot is released.
#[cfg(retypd_model_check)]
fn admission_all_or_nothing() {
    use loom::modelled::sync::Arc;
    use loom::modelled::thread;
    use retypd_serve::admission::Admission;
    let gate = Arc::new(Admission::new(2));
    let (g1, g2) = (Arc::clone(&gate), Arc::clone(&gate));
    let t1 = thread::spawn(move || {
        let ok = g1.admit(2).is_ok();
        if ok {
            g1.release(2);
        }
        ok
    });
    let t2 = thread::spawn(move || {
        let ok = g2.admit(1).is_ok();
        if ok {
            g2.release(1);
        }
        ok
    });
    assert!(gate.queued() <= 2, "the gate must never exceed its limit");
    t1.join().unwrap();
    t2.join().unwrap();
    assert_eq!(gate.queued(), 0, "every admitted slot must be released");
}

/// Admission drain election: any number of concurrent `begin_drain`
/// calls elect exactly one winner (the AcqRel swap), and the flag is
/// sticky.
#[cfg(retypd_model_check)]
fn admission_drain_election() {
    use loom::modelled::sync::Arc;
    use loom::modelled::thread;
    use retypd_serve::admission::Admission;
    let gate = Arc::new(Admission::new(4));
    let handles: Vec<_> = (0..3)
        .map(|_| {
            let g = Arc::clone(&gate);
            thread::spawn(move || g.begin_drain())
        })
        .collect();
    let winners = handles
        .into_iter()
        .map(|h| h.join().unwrap())
        .filter(|&won| won)
        .count();
    assert_eq!(winners, 1, "exactly one drain caller may win the election");
    assert!(gate.is_draining(), "the drain flag is sticky");
}

/// Admission slot guard: an admitted slot wrapped in the RAII guard is
/// released when the guard drops, even while another thread probes the
/// gate concurrently.
#[cfg(retypd_model_check)]
fn admission_slot_guard() {
    use loom::modelled::sync::Arc;
    use loom::modelled::thread;
    use retypd_serve::admission::Admission;
    let gate = Arc::new(Admission::new(2));
    gate.admit(2).expect("uncontended admit of both slots");
    let holders: Vec<_> = (0..2)
        .map(|_| {
            let g = Arc::clone(&gate);
            thread::spawn(move || {
                let slot = g.slot_guard();
                assert!(g.queued() >= 1, "our own slot is still held here");
                drop(slot);
            })
        })
        .collect();
    assert!(gate.queued() <= 2, "the probe never sees more than the limit");
    for h in holders {
        h.join().unwrap();
    }
    assert_eq!(gate.queued(), 0, "every dropped guard must release its slot");
}

/// ShardStatsCells publish vs. snapshot (the PR-8 contention): a
/// concurrent snapshot may mix adjacent publishes field-by-field
/// (documented), but every field it returns is a value some publish
/// wrote, and the post-join snapshot equals the last publish exactly.
#[cfg(retypd_model_check)]
fn stats_cells_publish_snapshot() {
    use loom::modelled::sync::Arc;
    use loom::modelled::thread;
    use retypd_driver::{CacheStats, PersistStats};
    use retypd_serve::stats_cells::ShardStatsCells;
    let cells = Arc::new(ShardStatsCells::default());
    let c2 = Arc::clone(&cells);
    let publisher = thread::spawn(move || {
        let cache = CacheStats { hits: 1, ..CacheStats::default() };
        let persist = PersistStats { persisted_entries: 1, ..PersistStats::default() };
        c2.publish_counts(1, 0, &cache, &persist);
        let cache = CacheStats { hits: 2, ..CacheStats::default() };
        let persist = PersistStats { persisted_entries: 2, ..PersistStats::default() };
        c2.publish_counts(2, 0, &cache, &persist);
    });
    let mid = cells.snapshot(0);
    assert!(mid.jobs <= 2, "jobs must be a published value, saw {}", mid.jobs);
    assert!(mid.cache.hits <= 2, "hits must be a published value");
    assert!(mid.persisted_entries <= 2, "gauge must be a published value");
    publisher.join().unwrap();
    let fin = cells.snapshot(0);
    assert_eq!(fin.jobs, 2, "post-join snapshot sees the last publish");
    assert_eq!(fin.cache.hits, 2);
    assert_eq!(fin.persisted_entries, 2);
}

// ---------------------------------------------------------------------------
// Registries.

/// Every passing model valid in this build configuration. Under
/// `--cfg retypd_model_check` this includes the product models; in a
/// normal build, only the abstract (always-compiled) ones.
pub fn registry() -> Vec<ModelDef> {
    // `mut` is only exercised under --cfg retypd_model_check, where the
    // product models are appended below.
    #[cfg_attr(not(retypd_model_check), allow(unused_mut))]
    let mut models = vec![
        ModelDef {
            name: "mp_publish",
            what: "release/acquire publication: reader sees the value after the flag",
            preemption_bound: 5,
            cap: DEFAULT_MAX_ITERATIONS,
            body: mp_publish,
        },
        ModelDef {
            name: "handshake_ack",
            what: "shutdown-ack handshake (PR-4): predicate loop under one mutex",
            preemption_bound: 5,
            cap: DEFAULT_MAX_ITERATIONS,
            body: handshake_ack,
        },
        ModelDef {
            name: "relaxed_counter_total",
            what: "relaxed RMW counters: no increment lost across three threads",
            preemption_bound: 2,
            cap: DEFAULT_MAX_ITERATIONS,
            body: relaxed_counter_total,
        },
    ];
    #[cfg(retypd_model_check)]
    models.extend([
        ModelDef {
            name: "interner_double_miss",
            what: "Interner: concurrent double miss inserts once, one canonical pointer",
            preemption_bound: 4,
            cap: DEFAULT_MAX_ITERATIONS,
            body: interner_double_miss,
        },
        ModelDef {
            name: "histogram_concurrent_record",
            what: "telemetry Histogram: concurrent records + snapshot, exact after join",
            preemption_bound: 4,
            cap: DEFAULT_MAX_ITERATIONS,
            body: histogram_concurrent_record,
        },
        ModelDef {
            name: "admission_all_or_nothing",
            what: "Admission: batches admit all-or-nothing, limit never exceeded",
            preemption_bound: 3,
            cap: DEFAULT_MAX_ITERATIONS,
            body: admission_all_or_nothing,
        },
        ModelDef {
            name: "admission_drain_election",
            what: "Admission: concurrent begin_drain elects exactly one winner",
            preemption_bound: 3,
            cap: DEFAULT_MAX_ITERATIONS,
            body: admission_drain_election,
        },
        ModelDef {
            name: "admission_slot_guard",
            what: "Admission: RAII slot guard releases on drop under contention",
            preemption_bound: 5,
            cap: DEFAULT_MAX_ITERATIONS,
            body: admission_slot_guard,
        },
        ModelDef {
            name: "stats_cells_publish_snapshot",
            what: "ShardStatsCells (PR-8): snapshot mixes only published values",
            preemption_bound: 1,
            cap: 2_000,
            body: stats_cells_publish_snapshot,
        },
    ]);
    models
}

/// The deliberately broken models. Every one of these MUST fail under
/// exploration — they are the proof the checker still has teeth.
pub fn mutations() -> Vec<ModelDef> {
    vec![
        ModelDef {
            name: "mp_publish_weakened",
            what: "MUTATION: release store weakened to relaxed — a data race appears",
            preemption_bound: 5,
            cap: DEFAULT_MAX_ITERATIONS,
            body: mp_publish_weakened,
        },
        ModelDef {
            name: "handshake_lost_wakeup",
            what: "MUTATION: ack flag outside the mutex — a lost wakeup deadlocks",
            preemption_bound: 5,
            cap: DEFAULT_MAX_ITERATIONS,
            body: handshake_lost_wakeup,
        },
    ]
}
