//! The `retypd-fuzz` binary: a deterministic fuzz campaign against an
//! in-process live server.
//!
//! ```text
//! cargo run --release -p retypd-fuzz -- --seed 1 --iters 10000 --out fuzz-stats.json
//! ```
//!
//! Iterations round-robin the three mutator tiers. Every input runs the
//! in-process decode oracle; every input that cannot be mistaken for a
//! `shutdown` request is also delivered to the live socket. Grammar-tier
//! iterations additionally mutate a backend `stats` *reply* and drive it
//! through the gateway's health-probe classifier, which must degrade
//! garbage to "unhealthy" without ever panicking the router. Failures are
//! minimized and (with `--save-failures`) written into the committed
//! regression corpus. The run writes a stats JSON (`--out`) and exits
//! non-zero if any oracle tripped.

use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;
use retypd_fuzz::alloc::CountingAlloc;
use retypd_fuzz::mutate::{self, Tier};
use retypd_fuzz::oracle::{
    check_gateway_reply, check_grammar_strings, check_in_process, Failure, SocketOracle,
};
use retypd_fuzz::{contains_shutdown, corpus, minimize};
use retypd_serve::json::Json;
use retypd_serve::{start, ServeConfig};

/// The allocation oracle hooks every allocation in this process —
/// including the server's, which runs in-process precisely so mutant-
/// driven allocation spikes land in these counters.
#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Live-heap growth bound for a whole campaign. Generous on purpose:
/// `Symbol` interning and the shard caches grow monotonically by design;
/// what this catches is a mutant that balloons memory by hundreds of MiB
/// (e.g. an announced-length allocation bug).
const MAX_GROWTH_BYTES: usize = 512 << 20;

/// Per-input wall-clock budget for the in-process decode path.
const IN_PROCESS_BUDGET: Duration = Duration::from_secs(2);

/// Per-interaction socket deadline: past this, the input is a hang.
const SOCKET_DEADLINE: Duration = Duration::from_secs(5);

fn usage() -> ! {
    eprintln!(
        "usage: retypd-fuzz [--seed N] [--iters M] [--out PATH] [--save-failures]"
    );
    std::process::exit(2);
}

struct TierStats {
    inputs: u64,
    decoded_valid: u64,
    delivered: u64,
    skipped_shutdown: u64,
    reply_frames: u64,
    silent_closes: u64,
}

impl TierStats {
    fn new() -> TierStats {
        TierStats {
            inputs: 0,
            decoded_valid: 0,
            delivered: 0,
            skipped_shutdown: 0,
            reply_frames: 0,
            silent_closes: 0,
        }
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("inputs".into(), Json::u64(self.inputs)),
            ("decoded_valid".into(), Json::u64(self.decoded_valid)),
            ("delivered".into(), Json::u64(self.delivered)),
            ("skipped_shutdown".into(), Json::u64(self.skipped_shutdown)),
            ("reply_frames".into(), Json::u64(self.reply_frames)),
            ("silent_closes".into(), Json::u64(self.silent_closes)),
        ])
    }
}

struct FailureRecord {
    iteration: u64,
    tier: Tier,
    failure: Failure,
    minimized_len: usize,
    saved: Option<String>,
}

fn main() {
    let mut seed = 1u64;
    let mut iters = 10_000u64;
    let mut out: Option<String> = None;
    let mut save_failures = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => match args.next().as_deref().map(str::parse) {
                Some(Ok(n)) => seed = n,
                _ => usage(),
            },
            "--iters" => match args.next().as_deref().map(str::parse) {
                Some(Ok(n)) => iters = n,
                _ => usage(),
            },
            "--out" => out = Some(args.next().unwrap_or_else(|| usage())),
            "--save-failures" => save_failures = true,
            _ => usage(),
        }
    }

    // A small-footprint live server: short read timeout (mutant
    // connections must not linger), bounded caches, default per-connection
    // budgets (the fuzzer exercises them incidentally).
    let handle = start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        shards: 2,
        workers_per_shard: 1,
        queue_depth: 32,
        cache_capacity: Some(256),
        read_timeout: Some(Duration::from_secs(2)),
        ..ServeConfig::default()
    })
    .expect("bind fuzz server");
    let bases = mutate::base_payloads();
    let mut oracle = SocketOracle::new(handle.addr(), SOCKET_DEADLINE);
    oracle.probe("startup probe").expect("fuzz server answers");

    let baseline = CountingAlloc::current();
    CountingAlloc::reset_peak();
    let start_time = Instant::now();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut tier_stats = [TierStats::new(), TierStats::new(), TierStats::new()];
    let mut failures: Vec<FailureRecord> = Vec::new();
    let mut gateway_replies = 0u64;
    let mut gateway_healthy = 0u64;

    for i in 0..iters {
        let tier = Tier::for_iteration(i);
        let mutant = mutate::mutate(tier, &mut rng, &bases);
        let ts = &mut tier_stats[tier as usize];
        ts.inputs += 1;

        // In-process oracles.
        let mut failed: Option<Failure> = None;
        match check_in_process(&mutant.bytes, IN_PROCESS_BUDGET) {
            Ok(true) => ts.decoded_valid += 1,
            Ok(false) => {}
            Err(f) => failed = Some(f),
        }
        if failed.is_none() && !mutant.grammar.is_empty() {
            if let Err(f) = check_grammar_strings(&mutant.grammar, IN_PROCESS_BUDGET) {
                failed = Some(f);
            }
        }

        // Grammar-tier iterations also attack the *other* direction of
        // the protocol: a backend's stats reply as seen by the gateway's
        // health probe. The classifier must degrade garbage to unhealthy,
        // never panic the router.
        if failed.is_none() && tier == Tier::Grammar {
            let reply = mutate::gateway_stats_mutant(&mut rng);
            gateway_replies += 1;
            match check_gateway_reply(&reply, IN_PROCESS_BUDGET) {
                Ok(true) => gateway_healthy += 1,
                Ok(false) => {}
                Err(f) => {
                    record_gateway_failure(&mut failures, i, &reply, f, save_failures);
                }
            }
        }

        // Socket oracles: never hand the shared server a shutdown.
        if failed.is_none() {
            if contains_shutdown(&mutant.bytes) {
                ts.skipped_shutdown += 1;
            } else {
                let context = format!("iteration {i} ({})", tier.name());
                let outcome = if mutant.raw {
                    oracle.deliver_raw(&mutant.bytes, &context).map(|reply| {
                        if reply.is_empty() {
                            ts.silent_closes += 1;
                            0
                        } else {
                            1
                        }
                    })
                } else {
                    oracle.deliver_framed(&mutant.bytes, &context)
                };
                match outcome {
                    Ok(frames) => {
                        ts.delivered += 1;
                        ts.reply_frames += frames as u64;
                    }
                    Err(f) => failed = Some(f),
                }
            }
        }

        if let Some(failure) = failed {
            record_failure(
                &mut failures,
                i,
                &mutant.bytes,
                mutant.raw,
                tier,
                failure,
                save_failures,
            );
        }

        // Periodic liveness + allocation checks.
        if i % 500 == 499 {
            if let Err(f) = oracle.probe(&format!("periodic probe after iteration {i}")) {
                record_failure(&mut failures, i, &[], false, tier, f, false);
                break; // a dead server fails every remaining input; stop.
            }
            let growth = CountingAlloc::current().saturating_sub(baseline);
            if growth > MAX_GROWTH_BYTES {
                let f = Failure::MemoryGrowth {
                    grew_bytes: growth,
                    context: format!("after iteration {i}"),
                };
                record_failure(&mut failures, i, &[], false, tier, f, false);
                break;
            }
        }
    }

    // Final liveness probe: the campaign must leave the server standing.
    if let Err(f) = oracle.probe("final probe") {
        record_failure(&mut failures, iters, &[], false, Tier::Raw, f, false);
    }
    let growth = CountingAlloc::current().saturating_sub(baseline);
    let peak = CountingAlloc::peak();
    let wall_ms = start_time.elapsed().as_millis() as u64;
    handle.shutdown();

    let stats = Json::Obj(vec![
        ("seed".into(), Json::u64(seed)),
        ("iters".into(), Json::u64(iters)),
        ("wall_ms".into(), Json::u64(wall_ms)),
        (
            "gateway".into(),
            Json::Obj(vec![
                ("stats_replies".into(), Json::u64(gateway_replies)),
                ("classified_healthy".into(), Json::u64(gateway_healthy)),
            ]),
        ),
        (
            "tiers".into(),
            Json::Obj(vec![
                ("raw".into(), tier_stats[0].to_json()),
                ("structural".into(), tier_stats[1].to_json()),
                ("grammar".into(), tier_stats[2].to_json()),
            ]),
        ),
        (
            "alloc".into(),
            Json::Obj(vec![
                ("baseline_bytes".into(), Json::usize(baseline)),
                ("growth_bytes".into(), Json::usize(growth)),
                ("peak_bytes".into(), Json::usize(peak)),
                ("growth_limit_bytes".into(), Json::usize(MAX_GROWTH_BYTES)),
            ]),
        ),
        (
            "failures".into(),
            Json::Arr(
                failures
                    .iter()
                    .map(|f| {
                        Json::Obj(vec![
                            ("iteration".into(), Json::u64(f.iteration)),
                            ("tier".into(), Json::str(f.tier.name())),
                            ("kind".into(), Json::str(f.failure.kind())),
                            ("detail".into(), Json::str(f.failure.describe())),
                            ("minimized_len".into(), Json::usize(f.minimized_len)),
                            (
                                "saved".into(),
                                f.saved.as_deref().map_or(Json::Null, Json::str),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    if let Some(path) = out {
        std::fs::write(&path, stats.encode()).expect("write stats");
        eprintln!("stats written to {path}");
    }

    let delivered: u64 = tier_stats.iter().map(|t| t.delivered).sum();
    eprintln!(
        "retypd-fuzz: {iters} iterations (seed {seed}) in {wall_ms}ms, \
         {delivered} delivered to the socket, {} failures, \
         heap growth {growth} bytes (peak {peak})",
        failures.len()
    );
    for f in &failures {
        eprintln!(
            "  FAILURE at iteration {} [{}]: {}",
            f.iteration,
            f.tier.name(),
            f.failure.describe()
        );
    }
    if !failures.is_empty() {
        std::process::exit(1);
    }
}

/// Minimizes (where the failure reproduces in-process) and records one
/// failing input, optionally saving it into the corpus.
fn record_failure(
    failures: &mut Vec<FailureRecord>,
    iteration: u64,
    bytes: &[u8],
    raw: bool,
    tier: Tier,
    failure: Failure,
    save: bool,
) {
    // Only panics and in-process hangs re-check cheaply and determin-
    // istically; socket-level failures are recorded at full size.
    let minimized = match &failure {
        Failure::Panic { .. } | Failure::Hang { .. } if !bytes.is_empty() => minimize(
            bytes,
            2048,
            &mut |cand| {
                check_in_process(cand, IN_PROCESS_BUDGET).is_err()
            },
        ),
        _ => bytes.to_vec(),
    };
    let saved = if save && !minimized.is_empty() {
        corpus::save(&format!("found_{}", failure.kind()), &minimized, raw).ok()
    } else {
        None
    };
    failures.push(FailureRecord {
        iteration,
        tier,
        failure,
        minimized_len: minimized.len(),
        saved,
    });
}

/// Like [`record_failure`], but for a backend stats *reply* that broke
/// the gateway classifier. Saved entries take the `gwstats_found` prefix
/// so the replay suite routes them through the classifier rather than a
/// request socket.
fn record_gateway_failure(
    failures: &mut Vec<FailureRecord>,
    iteration: u64,
    bytes: &[u8],
    failure: Failure,
    save: bool,
) {
    let minimized = minimize(bytes, 2048, &mut |cand| {
        check_gateway_reply(cand, IN_PROCESS_BUDGET).is_err()
    });
    let saved = if save && !minimized.is_empty() {
        corpus::save(&format!("gwstats_found_{}", failure.kind()), &minimized, false).ok()
    } else {
        None
    };
    failures.push(FailureRecord {
        iteration,
        tier: Tier::Grammar,
        failure,
        minimized_len: minimized.len(),
        saved,
    });
}
