//! The three mutator tiers. Everything is a pure function of the seeded
//! RNG and the fixed base-request set, so a (seed, iteration) pair always
//! reproduces the same mutant.

use rand::rngs::StdRng;
use rand::Rng;
use retypd_core::parse::parse_constraint_set;
use retypd_core::solver::Procedure;
use retypd_core::{LatticeDescriptor, Program, Symbol};
use retypd_driver::{CacheStats, ModuleJob};
use retypd_serve::json::Json;
use retypd_serve::wire::{self, WireModule, WireShardStats, WireStats};
use retypd_serve::{Request, Response};

/// Which mutator produced an input.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tier {
    /// Byte-level damage plus length-prefix attacks.
    Raw,
    /// JSON-tree structural mutations.
    Structural,
    /// Grammar-aware envelope / lattice / constraint-text mutations.
    Grammar,
}

impl Tier {
    /// Round-robin tier for an iteration index.
    pub fn for_iteration(i: u64) -> Tier {
        match i % 3 {
            0 => Tier::Raw,
            1 => Tier::Structural,
            _ => Tier::Grammar,
        }
    }

    /// Stable lower-case name (stats keys, labels).
    pub fn name(self) -> &'static str {
        match self {
            Tier::Raw => "raw",
            Tier::Structural => "structural",
            Tier::Grammar => "grammar",
        }
    }
}

/// One fuzz input.
pub struct Mutant {
    /// When `raw`, complete wire bytes (the mutant carries its own length
    /// prefix — that prefix *is* the attack surface); otherwise a frame
    /// payload the harness frames normally.
    pub bytes: Vec<u8>,
    /// See [`Mutant::bytes`].
    pub raw: bool,
    /// The tier that produced this input.
    pub tier: Tier,
    /// Grammar strings embedded in the payload (tier C): also driven
    /// through the [`retypd_core::fuzzing`] checkers in-process.
    pub grammar: Vec<String>,
}

/// A tiny but representative module: one procedure with load/store paths,
/// a σ access, and a constant — enough that grammar mutations of its
/// constraint text reach the deep parser branches.
fn sample_job(name: &str) -> ModuleJob {
    let mut prog = Program::new();
    prog.add_proc(Procedure {
        name: Symbol::intern("f"),
        constraints: parse_constraint_set(
            "f.in_stack0 <= x; x.load.σ32@0 <= int; x <= f.out_eax; VAR x.load",
        )
        .expect("base constraints parse"),
        callsites: vec![],
    });
    ModuleJob {
        name: name.into(),
        program: prog,
    }
}

/// The valid base requests mutation starts from. Index 0 is `stats`;
/// indexes 1–3 are solve requests (the grammar tier starts from index 1,
/// since only non-`stats` requests carry interesting envelope fields);
/// index 4 is `metrics`.
pub fn base_payloads() -> Vec<Vec<u8>> {
    let module = WireModule::from_job(&sample_job("fuzz_base"));
    let lattice: LatticeDescriptor = "lattice fz { lo hi ; lo <= hi }"
        .parse()
        .expect("base lattice parses");
    vec![
        Request::Stats.encode(),
        Request::SolveModule {
            module: module.clone(),
            lattice: None,
            trace_id: None,
        }
        .encode(),
        Request::SolveBatch {
            modules: vec![module.clone(), module.clone()],
            lattice: Some(lattice.clone()),
            stream: false,
            trace_id: Some("fuzz-trace".into()),
        }
        .encode(),
        Request::SolveBatch {
            modules: vec![module],
            lattice: Some(lattice),
            stream: true,
            trace_id: None,
        }
        .encode(),
        Request::Metrics { text: false }.encode(),
    ]
}

/// Produces the mutant for one iteration of `tier`.
pub fn mutate(tier: Tier, rng: &mut StdRng, bases: &[Vec<u8>]) -> Mutant {
    match tier {
        Tier::Raw => raw_mutant(rng, bases),
        Tier::Structural => structural_mutant(rng, bases),
        Tier::Grammar => grammar_mutant(rng, bases),
    }
}

// ---------------------------------------------------------------------------
// Tier A: raw bytes and length prefixes.

fn mutate_bytes(base: &[u8], rng: &mut StdRng) -> Vec<u8> {
    let mut b = base.to_vec();
    for _ in 0..rng.gen_range(1..8u32) {
        if b.is_empty() {
            b.push(rng.gen());
            continue;
        }
        match rng.gen_range(0..5u32) {
            0 => {
                // Flip one bit.
                let i = rng.gen_range(0..b.len());
                b[i] ^= 1 << rng.gen_range(0..8u32);
            }
            1 => {
                b.truncate(rng.gen_range(0..b.len()));
            }
            2 => {
                // Insert a short burst of random bytes.
                let at = rng.gen_range(0..=b.len());
                let burst: Vec<u8> = (0..rng.gen_range(1..16usize)).map(|_| rng.gen()).collect();
                b.splice(at..at, burst);
            }
            3 => {
                let i = rng.gen_range(0..b.len());
                b[i] = rng.gen();
            }
            _ => {
                // Duplicate a chunk (length-field confusion fodder).
                let start = rng.gen_range(0..b.len());
                let end = (start + rng.gen_range(1..32usize)).min(b.len());
                let chunk = b[start..end].to_vec();
                let at = rng.gen_range(0..=b.len());
                b.splice(at..at, chunk);
            }
        }
    }
    b
}

/// Wraps a (mutated) payload in a wire frame whose length prefix may lie.
fn frame_attack(payload: Vec<u8>, rng: &mut StdRng) -> Vec<u8> {
    let announce: u32 = match rng.gen_range(0..6u32) {
        // Honest framing: the payload damage is the attack.
        0 => payload.len() as u32,
        // Announce more than will ever arrive (truncated frame).
        1 => (payload.len() as u32).saturating_add(rng.gen_range(1..4096u32)),
        // Announce less: the tail bytes become a garbage "next frame".
        2 => (payload.len() / 2) as u32,
        // Far over the cap.
        3 => u32::MAX,
        // Exactly one past the cap.
        4 => (wire::MAX_FRAME_BYTES as u32) + 1,
        // Zero-length frame, payload bytes trailing as garbage.
        _ => 0,
    };
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&announce.to_be_bytes());
    out.extend_from_slice(&payload);
    out
}

fn raw_mutant(rng: &mut StdRng, bases: &[Vec<u8>]) -> Mutant {
    let base = &bases[rng.gen_range(0..bases.len())];
    let payload = mutate_bytes(base, rng);
    Mutant {
        bytes: frame_attack(payload, rng),
        raw: true,
        tier: Tier::Raw,
        grammar: Vec::new(),
    }
}

// ---------------------------------------------------------------------------
// Tier B: structural JSON mutations.

fn huge_number(rng: &mut StdRng) -> String {
    match rng.gen_range(0..4u32) {
        0 => "1e308".into(),
        1 => "-1e9999".into(),
        2 => format!("{}", u64::MAX),
        _ => {
            // A very long digit string (integer overflow bait).
            let len = rng.gen_range(20..64usize);
            let mut s = String::from("9");
            for _ in 1..len {
                s.push(char::from(b'0' + rng.gen_range(0..10u8)));
            }
            s
        }
    }
}

fn huge_string(rng: &mut StdRng) -> String {
    let len = rng.gen_range(1024..16384usize);
    let unit = match rng.gen_range(0..3u32) {
        0 => "A",
        1 => "σ",
        _ => "\\",
    };
    unit.repeat(len)
}

/// An array nested `depth` levels — straddling the parser's
/// [`retypd_serve::json::MAX_DEPTH`] bound from both sides.
fn deep_array(depth: usize) -> Json {
    let mut v = Json::u64(1);
    for _ in 0..depth {
        v = Json::Arr(vec![v]);
    }
    v
}

/// Walks to a random node (biased toward descending into containers).
fn random_node<'a>(v: &'a mut Json, rng: &mut StdRng) -> &'a mut Json {
    if !rng.gen_bool(0.7) {
        return v;
    }
    let n_children = match v {
        Json::Arr(a) => a.len(),
        Json::Obj(m) => m.len(),
        _ => 0,
    };
    if n_children == 0 {
        return v;
    }
    let idx = rng.gen_range(0..n_children);
    match v {
        Json::Arr(a) => random_node(&mut a[idx], rng),
        Json::Obj(m) => random_node(&mut m[idx].1, rng),
        _ => unreachable!("scalars have no children"),
    }
}

fn mutate_json(v: &mut Json, rng: &mut StdRng) {
    let node = random_node(v, rng);
    match rng.gen_range(0..8u32) {
        0 => *node = Json::Null,
        1 => *node = Json::Num(huge_number(rng)),
        2 => *node = Json::Str(huge_string(rng)),
        // Nesting bomb: sometimes under, sometimes over the parse limit.
        3 => *node = deep_array(rng.gen_range(100..200usize)),
        4 => {
            // Drop a member / element.
            match node {
                Json::Obj(m) if !m.is_empty() => {
                    let i = rng.gen_range(0..m.len());
                    m.remove(i);
                }
                Json::Arr(a) if !a.is_empty() => {
                    let i = rng.gen_range(0..a.len());
                    a.remove(i);
                }
                other => *other = Json::Bool(rng.gen()),
            }
        }
        5 => {
            // Duplicate a member (duplicate keys) / element.
            match node {
                Json::Obj(m) if !m.is_empty() => {
                    let i = rng.gen_range(0..m.len());
                    let dup = m[i].clone();
                    let at = rng.gen_range(0..=m.len());
                    m.insert(at, dup);
                }
                Json::Arr(a) if !a.is_empty() => {
                    let i = rng.gen_range(0..a.len());
                    let dup = a[i].clone();
                    a.push(dup);
                }
                other => *other = Json::Arr(vec![]),
            }
        }
        6 => {
            // Type swap.
            *node = match &*node {
                Json::Str(s) => Json::Num(s.len().to_string()),
                Json::Num(n) => Json::Str(n.clone()),
                Json::Bool(b) => Json::Num(u8::from(*b).to_string()),
                Json::Null => Json::Obj(vec![("null".into(), Json::Null)]),
                Json::Arr(a) => Json::Obj(
                    a.iter()
                        .enumerate()
                        .map(|(i, v)| (i.to_string(), v.clone()))
                        .collect(),
                ),
                Json::Obj(m) => Json::Arr(m.iter().map(|(_, v)| v.clone()).collect()),
            };
        }
        _ => *node = Json::Num("-0".into()),
    }
}

fn structural_mutant(rng: &mut StdRng, bases: &[Vec<u8>]) -> Mutant {
    let base = &bases[rng.gen_range(0..bases.len())];
    let text = std::str::from_utf8(base).expect("base payloads are JSON text");
    let mut v = Json::parse(text).expect("base payloads parse");
    for _ in 0..rng.gen_range(1..4u32) {
        mutate_json(&mut v, rng);
    }
    let mut bytes = v.encode().into_bytes();
    // Sometimes follow up with text-level damage (truncation mid-token,
    // mid-escape, or mid-UTF-8 sequence).
    if rng.gen_bool(0.25) && !bytes.is_empty() {
        bytes.truncate(rng.gen_range(0..bytes.len()));
    }
    Mutant {
        bytes,
        raw: false,
        tier: Tier::Structural,
        grammar: Vec::new(),
    }
}

// ---------------------------------------------------------------------------
// Tier C: grammar-aware mutations.

/// Character pool biased toward the constraint grammar.
const G_POOL: &[char] = &[
    'a', 'f', 'x', 'z', '0', '4', '9', '.', '@', '#', '$', '_', '(', ')', ';', ',', '<', '=',
    ':', ' ', '\n', '{', '}', '-', 'σ', '⊑', '⊤', '⊥', 'é',
];

/// Grammar vocabulary spliced between random characters.
const G_FRAGMENTS: &[&str] = &[
    "load", "store", "in_stack0", "out_eax", "σ32@4", "s16@-2", "VAR ", "Add(", "Sub(", "<=",
    "<:", "⊑", "int", "uint", "#SuccessZ", "$elem", ".load.", "@c1", "; ", "in_", "out_",
    "f.in_stack0 <= x", "x.load.σ32@0 <= int",
];

fn grammar_string(rng: &mut StdRng, max_picks: usize) -> String {
    let mut s = String::new();
    for _ in 0..rng.gen_range(1..=max_picks) {
        if rng.gen_bool(0.4) {
            s.push_str(G_FRAGMENTS[rng.gen_range(0..G_FRAGMENTS.len())]);
        } else {
            s.push(G_POOL[rng.gen_range(0..G_POOL.len())]);
        }
    }
    s
}

/// A lattice-descriptor-shaped string: usually near-canonical, sometimes
/// with a corrupted name, element list, or edge list.
fn grammar_descriptor(rng: &mut StdRng) -> String {
    let name = match rng.gen_range(0..4u32) {
        0 => "fz".into(),
        1 => grammar_string(rng, 3),
        2 => String::new(),
        _ => "a b".into(), // whitespace in the name: must be rejected
    };
    let elems = match rng.gen_range(0..3u32) {
        0 => "lo mid hi".into(),
        1 => grammar_string(rng, 6),
        _ => "lo lo".into(), // duplicate element
    };
    let edges = match rng.gen_range(0..3u32) {
        0 => "lo <= mid, mid <= hi".into(),
        1 => grammar_string(rng, 6),
        _ => "lo <= ghost".into(), // edge to an undeclared element
    };
    match rng.gen_range(0..4u32) {
        0 => format!("lattice {name} {{ {elems} ; {edges} }}"),
        1 => format!("lattice {name} {{ {elems} ; {edges}"), // unterminated
        2 => format!("lattice {name} {elems} ; {edges} }}"), // missing brace
        _ => grammar_string(rng, 10),
    }
}

/// Replaces the `n`-th string node (depth-first) with `s`.
fn replace_nth_str(v: &mut Json, n: &mut usize, s: &str) -> bool {
    match v {
        Json::Str(old) => {
            if *n == 0 {
                *old = s.to_owned();
                return true;
            }
            *n -= 1;
            false
        }
        Json::Arr(a) => a.iter_mut().any(|c| replace_nth_str(c, n, s)),
        Json::Obj(m) => m.iter_mut().any(|(_, c)| replace_nth_str(c, n, s)),
        _ => false,
    }
}

fn count_strs(v: &Json) -> usize {
    match v {
        Json::Str(_) => 1,
        Json::Arr(a) => a.iter().map(count_strs).sum(),
        Json::Obj(m) => m.iter().map(|(_, c)| count_strs(c)).sum(),
        _ => 0,
    }
}

/// Sets (or inserts) a top-level envelope member.
fn set_member(v: &mut Json, key: &str, value: Json) {
    if let Json::Obj(m) = v {
        if let Some(slot) = m.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            m.push((key.to_owned(), value));
        }
    }
}

fn grammar_mutant(rng: &mut StdRng, bases: &[Vec<u8>]) -> Mutant {
    // Start from a solve request (index 0 is `stats`, which carries no
    // modules or lattice to mutate).
    let base = &bases[rng.gen_range(1..bases.len())];
    let text = std::str::from_utf8(base).expect("base payloads are JSON text");
    let mut v = Json::parse(text).expect("base payloads parse");
    let mut grammar = Vec::new();
    match rng.gen_range(0..6u32) {
        0 => {
            // Constraint / name text: overwrite a random embedded string.
            let s = grammar_string(rng, 24);
            let total = count_strs(&v);
            if total > 0 {
                let mut n = rng.gen_range(0..total);
                replace_nth_str(&mut v, &mut n, &s);
            }
            grammar.push(s);
        }
        1 => {
            let d = grammar_descriptor(rng);
            set_member(&mut v, "lattice", Json::Str(d.clone()));
            grammar.push(d);
        }
        2 => {
            // Version confusion.
            let ver = match rng.gen_range(0..5u32) {
                0 => Json::u64(rng.gen_range(0..12u64)),
                1 => Json::Num(huge_number(rng)),
                2 => Json::Str("2".into()),
                3 => Json::Null,
                _ => Json::Num("-1".into()),
            };
            set_member(&mut v, "v", ver);
        }
        3 => {
            // Kind confusion. Never "shutdown": the fuzz server is shared.
            let kind = match rng.gen_range(0..5u32) {
                0 => "stats".into(),
                1 => "solve_batch".into(),
                2 => "metrics".into(),
                3 => grammar_string(rng, 4),
                _ => String::new(),
            };
            set_member(&mut v, "kind", Json::Str(kind));
        }
        4 => {
            // Trace-id confusion: wrong types, empty, over the 64-byte
            // budget, or junk text — the envelope-level validation must
            // refuse these without touching the solve path.
            let trace = match rng.gen_range(0..6u32) {
                0 => Json::Str(String::new()),
                1 => Json::Str("A".repeat(rng.gen_range(65..512usize))),
                2 => Json::Str(grammar_string(rng, 8)),
                3 => Json::Arr(vec![Json::u64(1)]),
                4 => Json::u64(rng.gen()),
                _ => Json::Null,
            };
            set_member(&mut v, "trace_id", trace);
        }
        _ => {
            // Stream-flag confusion.
            let stream = match rng.gen_range(0..4u32) {
                0 => Json::Bool(true),
                1 => Json::Str("true".into()),
                2 => Json::u64(1),
                _ => Json::Null,
            };
            set_member(&mut v, "stream", stream);
        }
    }
    Mutant {
        bytes: v.encode().into_bytes(),
        raw: false,
        tier: Tier::Grammar,
        grammar,
    }
}

// ---------------------------------------------------------------------------
// Gateway-facing backend stats replies.

/// A healthy backend's `stats` reply — the bytes the gateway's health
/// probe hands to [`retypd_gateway::classify_stats_reply`]. The stats-
/// reply mutations below all start from this.
pub fn base_stats_reply() -> Vec<u8> {
    Response::Stats(WireStats {
        accepted: 12,
        rejected: 1,
        queued: 2,
        queue_limit: 64,
        pid: 4242,
        start_ns: 1_700_000_000_000_000_000,
        shards: vec![WireShardStats {
            shard: 0,
            jobs: 7,
            rebuilds: 0,
            cache: CacheStats::default(),
            persisted_entries: 3,
            replayed_entries: 3,
            replay_ns: 1_000,
        }],
    })
    .encode()
}

/// A mutated backend `stats` reply for the gateway's probe classifier:
/// wrong reply kinds, poisoned admission fields, shard-list confusion,
/// structural damage, truncation, and raw garbage. The classifier must
/// degrade every one of these to "unhealthy" — never panic the router,
/// never classify them healthy.
pub fn gateway_stats_mutant(rng: &mut StdRng) -> Vec<u8> {
    let base = base_stats_reply();
    let text = std::str::from_utf8(&base).expect("stats reply is JSON text");
    let mut v = Json::parse(text).expect("stats reply parses");
    match rng.gen_range(0..8u32) {
        0 => {
            // Another reply kind where `stats` was expected.
            let kind = match rng.gen_range(0..5u32) {
                0 => "error".into(),
                1 => "solved".into(),
                2 => "overloaded".into(),
                3 => "shutting_down".into(),
                _ => grammar_string(rng, 4),
            };
            set_member(&mut v, "kind", Json::Str(kind));
        }
        1 => {
            // Poison one admission / liveness number.
            let key = ["accepted", "rejected", "queued", "queue_limit", "pid", "start_ns"]
                [rng.gen_range(0..6usize)];
            let value = match rng.gen_range(0..5u32) {
                0 => Json::Num(huge_number(rng)),
                1 => Json::Num("-1".into()),
                2 => Json::Str("64".into()),
                3 => Json::Null,
                _ => Json::Arr(vec![]),
            };
            set_member(&mut v, key, value);
        }
        2 => {
            // A backend claiming it can admit nothing.
            set_member(&mut v, "queue_limit", Json::u64(0));
        }
        3 => {
            // Queue depth beyond the advertised limit.
            set_member(&mut v, "queued", Json::u64(rng.gen_range(65..10_000u64)));
        }
        4 => {
            // Shard-list confusion: empty, scalar, or scalar elements.
            let shards = match rng.gen_range(0..4u32) {
                0 => Json::Arr(vec![]),
                1 => Json::u64(7),
                2 => Json::Arr(vec![Json::Null, Json::u64(1)]),
                _ => Json::Str(grammar_string(rng, 4)),
            };
            set_member(&mut v, "shards", shards);
        }
        5 => {
            // Drop a random top-level member.
            if let Json::Obj(m) = &mut v {
                if !m.is_empty() {
                    let i = rng.gen_range(0..m.len());
                    m.remove(i);
                }
            }
        }
        6 => {
            // General structural damage, reusing the tier-B mutator.
            for _ in 0..rng.gen_range(1..4u32) {
                mutate_json(&mut v, rng);
            }
        }
        _ => {
            // Text-level damage: truncation or raw (possibly non-UTF-8)
            // garbage replacing the reply outright.
            let mut bytes = v.encode().into_bytes();
            if rng.gen_bool(0.5) && !bytes.is_empty() {
                bytes.truncate(rng.gen_range(0..bytes.len()));
            } else {
                bytes = (0..rng.gen_range(1..64usize)).map(|_| rng.gen()).collect();
            }
            return bytes;
        }
    }
    v.encode().into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn base_payloads_decode_as_requests() {
        for p in base_payloads() {
            Request::decode(&p).expect("base payload decodes");
        }
    }

    #[test]
    fn mutation_is_deterministic_per_seed() {
        let bases = base_payloads();
        for tier in [Tier::Raw, Tier::Structural, Tier::Grammar] {
            let mut a = StdRng::seed_from_u64(42);
            let mut b = StdRng::seed_from_u64(42);
            let ma = mutate(tier, &mut a, &bases);
            let mb = mutate(tier, &mut b, &bases);
            assert_eq!(ma.bytes, mb.bytes, "{tier:?} must be reproducible");
            assert_eq!(ma.grammar, mb.grammar);
        }
    }

    #[test]
    fn base_stats_reply_classifies_healthy() {
        retypd_gateway::classify_stats_reply(&base_stats_reply())
            .expect("the unmutated reply must classify healthy");
    }

    #[test]
    fn stats_reply_mutation_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        assert_eq!(gateway_stats_mutant(&mut a), gateway_stats_mutant(&mut b));
    }

    #[test]
    fn grammar_mutants_never_request_shutdown() {
        let bases = base_payloads();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..500 {
            let m = mutate(Tier::Grammar, &mut rng, &bases);
            assert!(
                !crate::contains_shutdown(&m.bytes),
                "grammar tier must not synthesize shutdown requests"
            );
        }
    }
}
