//! Recursively constrained type schemes `∀α.(∃τ.C) ⇒ α` (Definition 3.4)
//! and their instantiation at callsites (Appendix A.4).

use std::collections::{BTreeSet, HashMap};
use std::fmt;

use crate::constraint::ConstraintSet;
use crate::dtv::{BaseVar, DerivedVar};
use crate::intern::Symbol;

/// A type scheme for a procedure: the procedure's type variable, a set of
/// existentially quantified internal variables, and a constraint set
/// relating the procedure's capabilities to type constants and to each
/// other.
///
/// The Figure 2 example renders as
/// `∀close_last. (∃τ. close_last.in_stack0 ⊑ τ ∧ …) ⇒ close_last`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TypeScheme {
    subject: BaseVar,
    existentials: BTreeSet<Symbol>,
    constraints: ConstraintSet,
}

impl TypeScheme {
    /// Creates a scheme.
    pub fn new(
        subject: BaseVar,
        existentials: BTreeSet<Symbol>,
        constraints: ConstraintSet,
    ) -> TypeScheme {
        TypeScheme {
            subject,
            existentials,
            constraints,
        }
    }

    /// An empty scheme for a procedure with no constraints (used as the
    /// initial assumption for procedures in the same SCC, Algorithm F.1).
    pub fn empty(subject: BaseVar) -> TypeScheme {
        TypeScheme {
            subject,
            existentials: BTreeSet::new(),
            constraints: ConstraintSet::new(),
        }
    }

    /// The procedure's type variable.
    pub fn subject(&self) -> BaseVar {
        self.subject
    }

    /// The quantified internal variables.
    pub fn existentials(&self) -> &BTreeSet<Symbol> {
        &self.existentials
    }

    /// The constraint set.
    pub fn constraints(&self) -> &ConstraintSet {
        &self.constraints
    }

    /// Instantiates the scheme at a callsite: every base variable except
    /// type constants and the variables in `keep` (globals, by convention)
    /// is renamed with the `@tag` suffix, yielding fresh variables per
    /// callsite — the let-polymorphism of Appendix A.4.
    ///
    /// Returns the instantiated constraint set together with the renamed
    /// subject variable to which actuals should be linked.
    pub fn instantiate(&self, tag: &str, keep: &BTreeSet<BaseVar>) -> (ConstraintSet, BaseVar) {
        let mut rename: HashMap<BaseVar, BaseVar> = HashMap::new();
        let renamed = |v: BaseVar, rename: &mut HashMap<BaseVar, BaseVar>| -> BaseVar {
            if v.is_const() || keep.contains(&v) {
                return v;
            }
            *rename
                .entry(v)
                .or_insert_with(|| BaseVar::var(&format!("{}@{tag}", v.name())))
        };
        let mut out = ConstraintSet::new();
        for c in self.constraints.subtypes() {
            let l = DerivedVar::with_path(
                renamed(c.lhs.base(), &mut rename),
                c.lhs.path().to_vec(),
            );
            let r = DerivedVar::with_path(
                renamed(c.rhs.base(), &mut rename),
                c.rhs.path().to_vec(),
            );
            out.add_sub(l, r);
        }
        for v in self.constraints.var_decls() {
            out.add_var_decl(DerivedVar::with_path(
                renamed(v.base(), &mut rename),
                v.path().to_vec(),
            ));
        }
        let subject = renamed(self.subject, &mut rename);
        (out, subject)
    }
}

impl fmt::Display for TypeScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "∀{}. ", self.subject)?;
        if !self.existentials.is_empty() {
            write!(f, "(∃")?;
            for e in &self.existentials {
                write!(f, " {e}")?;
            }
            write!(f, ". ")?;
        } else {
            write!(f, "(")?;
        }
        let mut first = true;
        for c in self.constraints.subtypes() {
            if !first {
                write!(f, " ∧ ")?;
            }
            write!(f, "{c}")?;
            first = false;
        }
        if first {
            write!(f, "⊤")?;
        }
        write!(f, ") ⇒ {}", self.subject)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_constraint_set;

    #[test]
    fn instantiation_renames_internals_only() {
        let cs = parse_constraint_set("f.in_stack0 <= t; t.load <= int; g_global <= t").unwrap();
        let mut ex = BTreeSet::new();
        ex.insert(Symbol::intern("t"));
        let scheme = TypeScheme::new(BaseVar::var("f"), ex, cs);
        let mut keep = BTreeSet::new();
        keep.insert(BaseVar::var("g_global"));
        let (inst, subject) = scheme.instantiate("cs1", &keep);
        assert_eq!(subject, BaseVar::var("f@cs1"));
        let rendered = inst.to_string();
        assert!(rendered.contains("f@cs1.in_stack0 ⊑ t@cs1"));
        assert!(rendered.contains("t@cs1.load ⊑ int"), "{rendered}");
        assert!(rendered.contains("g_global ⊑ t@cs1"), "{rendered}");
    }

    #[test]
    fn two_callsites_are_independent() {
        let cs = parse_constraint_set("malloc.out_eax <= t").unwrap();
        let scheme = TypeScheme::new(BaseVar::var("malloc"), BTreeSet::new(), cs);
        let keep = BTreeSet::new();
        let (a, sa) = scheme.instantiate("p1", &keep);
        let (b, sb) = scheme.instantiate("p2", &keep);
        assert_ne!(sa, sb);
        assert_ne!(a.to_string(), b.to_string());
    }

    #[test]
    fn display_matches_paper_shape() {
        let cs = parse_constraint_set("f.in_stack0 <= t").unwrap();
        let mut ex = BTreeSet::new();
        ex.insert(Symbol::intern("t"));
        let s = TypeScheme::new(BaseVar::var("f"), ex, cs).to_string();
        assert!(s.starts_with("∀f. (∃ t. "), "{s}");
        assert!(s.ends_with(") ⇒ f"), "{s}");
    }
}
