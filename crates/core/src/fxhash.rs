//! A fast, non-cryptographic hasher for the solver's internal tables.
//!
//! The data plane keys its interner and dedup maps by small integers and
//! short tuples (`DtvId`, `(DtvId, Label)`, packed edge words). The standard
//! library's default SipHash is DoS-resistant but costs tens of cycles per
//! key, which is measurable in graph construction and saturation. This is
//! the well-known multiply-rotate-xor scheme used by rustc ("FxHash"):
//! one multiply per word, no finalization.
//!
//! These tables are process-internal (never fed adversarial keys across a
//! trust boundary), so the lack of DoS resistance is acceptable.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-rotate-xor hasher; one multiply per written word.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn write_i32(&mut self, v: i32) {
        self.add(v as u32 as u64);
    }

    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.add(v as u64);
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_work() {
        let mut m: FxHashMap<(u32, u32), u32> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert((i, i * 7), i);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&(41, 287)], 41);
    }

    #[test]
    fn byte_writes_cover_remainders() {
        let mut h = FxHasher::default();
        h.write(b"0123456789abcdef!"); // 17 bytes: two chunks + remainder
        let a = h.finish();
        let mut h2 = FxHasher::default();
        h2.write(b"0123456789abcdef?");
        assert_ne!(a, h2.finish());
    }
}
