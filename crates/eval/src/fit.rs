//! Power-law regression `y = α·x^β` for the scaling figures (11–12).
//!
//! Following the paper's note, the model is fitted *numerically in linear
//! space* (minimizing `Σ (α·xᵢ^β − yᵢ)²`), initialized from the analytic
//! log-log solution, and R² is reported in linear space.

/// A fitted power law with its linear-space coefficient of determination.
#[derive(Clone, Copy, Debug)]
pub struct PowerLawFit {
    /// Multiplier α.
    pub alpha: f64,
    /// Exponent β.
    pub beta: f64,
    /// Linear-space R².
    pub r2: f64,
}

impl PowerLawFit {
    /// Predicted value at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.alpha * x.powf(self.beta)
    }
}

/// Fits `y = α·x^β` to the samples.
///
/// # Panics
///
/// Panics if fewer than two samples are provided or any sample is
/// non-positive (power laws need positive data).
pub fn fit_power_law(samples: &[(f64, f64)]) -> PowerLawFit {
    assert!(samples.len() >= 2, "need at least two samples");
    assert!(
        samples.iter().all(|&(x, y)| x > 0.0 && y > 0.0),
        "power-law fit needs positive samples"
    );
    // Log-log least squares for the initial guess.
    let n = samples.len() as f64;
    let (mut sx, mut sy, mut sxx, mut sxy) = (0.0, 0.0, 0.0, 0.0);
    for &(x, y) in samples {
        let (lx, ly) = (x.ln(), y.ln());
        sx += lx;
        sy += ly;
        sxx += lx * lx;
        sxy += lx * ly;
    }
    let mut beta = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    let mut alpha = ((sy - beta * sx) / n).exp();

    // Gauss–Newton refinement in linear space.
    for _ in 0..200 {
        // Residuals r_i = α x^β − y; Jacobian wrt (α, β).
        let (mut jtj00, mut jtj01, mut jtj11) = (0.0, 0.0, 0.0);
        let (mut jtr0, mut jtr1) = (0.0, 0.0);
        for &(x, y) in samples {
            let xb = x.powf(beta);
            let r = alpha * xb - y;
            let da = xb;
            let db = alpha * xb * x.ln();
            jtj00 += da * da;
            jtj01 += da * db;
            jtj11 += db * db;
            jtr0 += da * r;
            jtr1 += db * r;
        }
        // Solve the 2×2 normal equations with Levenberg damping.
        let lambda = 1e-9 * (jtj00 + jtj11);
        let det = (jtj00 + lambda) * (jtj11 + lambda) - jtj01 * jtj01;
        if det.abs() < 1e-30 {
            break;
        }
        let d_alpha = (-(jtr0) * (jtj11 + lambda) + jtr1 * jtj01) / det;
        let d_beta = (-(jtr1) * (jtj00 + lambda) + jtr0 * jtj01) / det;
        alpha += d_alpha;
        beta += d_beta;
        if alpha <= 0.0 {
            alpha = 1e-12;
        }
        if d_alpha.abs() < 1e-14 && d_beta.abs() < 1e-14 {
            break;
        }
    }

    // Linear-space R².
    let mean_y = samples.iter().map(|&(_, y)| y).sum::<f64>() / n;
    let ss_tot: f64 = samples.iter().map(|&(_, y)| (y - mean_y).powi(2)).sum();
    let ss_res: f64 = samples
        .iter()
        .map(|&(x, y)| (y - alpha * x.powf(beta)).powi(2))
        .sum();
    let r2 = if ss_tot > 0.0 { 1.0 - ss_res / ss_tot } else { 1.0 };
    PowerLawFit { alpha, beta, r2 }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_power_law() {
        let samples: Vec<(f64, f64)> = (1..20)
            .map(|i| {
                let x = i as f64 * 100.0;
                (x, 0.0007 * x.powf(1.1))
            })
            .collect();
        let fit = fit_power_law(&samples);
        assert!((fit.beta - 1.1).abs() < 1e-6, "beta {}", fit.beta);
        assert!((fit.alpha - 0.0007).abs() < 1e-6, "alpha {}", fit.alpha);
        assert!(fit.r2 > 0.999999);
    }

    #[test]
    fn fits_noisy_data() {
        // Deterministic pseudo-noise.
        let samples: Vec<(f64, f64)> = (1..30)
            .map(|i| {
                let x = i as f64 * 50.0;
                let noise = 1.0 + 0.05 * ((i * 2654435761u64 % 100) as f64 / 100.0 - 0.5);
                (x, 0.002 * x.powf(0.9) * noise)
            })
            .collect();
        let fit = fit_power_law(&samples);
        assert!((fit.beta - 0.9).abs() < 0.05, "beta {}", fit.beta);
        assert!(fit.r2 > 0.97, "r2 {}", fit.r2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive() {
        fit_power_law(&[(1.0, 0.0), (2.0, 1.0)]);
    }
}
