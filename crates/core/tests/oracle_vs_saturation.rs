//! Cross-validation of the pushdown saturation solver against the naive
//! Figure 3 deduction oracle.
//!
//! * **Completeness**: every subtype fact the bounded oracle derives
//!   *between materialized derived variables* must be accepted by the
//!   saturated-graph transducer (Theorem D.1, ⇒ direction). The
//!   materialization scope — mentions, prefixes, and their load/store
//!   sibling closure — is the documented completeness envelope: like the
//!   paper's Algorithm D.2, the saturation does not instantiate the
//!   pushdown `∆ptr` rules at arbitrary unmentioned depths, so Fig. 3
//!   entailments reachable only by repeatedly S-FIELD-lifting S-POINTER
//!   conclusions beyond that envelope are out of scope.
//! * **Soundness**: every pair the transducer accepts between *derivable
//!   capabilities* (shape-quotient-real words) must be derivable by the
//!   oracle. On phantom words the pushdown system deliberately
//!   over-approximates (its `∆ptr` has no `VAR` gates).

use proptest::prelude::*;
use retypd_core::deduction::Oracle;
use retypd_core::graph::ConstraintGraph;
use retypd_core::saturation::saturate;
use retypd_core::shapes::ShapeQuotient;
use retypd_core::transducer::accepts;
use retypd_core::{BaseVar, ConstraintSet, DerivedVar, Label};

fn label_strategy() -> impl Strategy<Value = Label> {
    prop_oneof![
        Just(Label::Load),
        Just(Label::Store),
        Just(Label::sigma(32, 0)),
    ]
}

fn base_strategy() -> impl Strategy<Value = BaseVar> {
    prop_oneof![
        4 => prop_oneof![Just("a"), Just("b"), Just("c")].prop_map(BaseVar::var),
        1 => Just(BaseVar::constant("int")),
    ]
}

fn dtv_strategy(max_len: usize) -> impl Strategy<Value = DerivedVar> {
    (
        base_strategy(),
        proptest::collection::vec(label_strategy(), 0..=max_len),
    )
        .prop_map(|(b, path)| {
            if b.is_const() {
                // Constants carry no capabilities in generated sets.
                DerivedVar::new(b)
            } else {
                DerivedVar::with_path(b, path)
            }
        })
}

fn constraint_set_strategy(
    max_word: usize,
    max_constraints: usize,
) -> impl Strategy<Value = ConstraintSet> {
    proptest::collection::vec(
        (dtv_strategy(max_word), dtv_strategy(max_word)),
        1..=max_constraints,
    )
    .prop_map(|pairs| {
        let mut cs = ConstraintSet::new();
        for (l, r) in pairs {
            cs.add_sub(l, r);
        }
        cs
    })
}

/// Constraints shaped like real constraint-generation output: at most one
/// side carries a label word (value copies `x ⊑ y`, loads `p.load.σ ⊑ x`,
/// stores `x ⊑ p.store.σ`, formals `f.in ⊑ x`), and the two sides have
/// distinct base variables. The abstract interpreter of Appendix A never
/// emits deep words on both sides of one constraint nor relates a variable
/// to its own derived variable (each definition site gets a fresh
/// variable); restricting the generator to this shape keeps the
/// completeness check within the engine's documented envelope (see module
/// docs).
fn machine_shaped_strategy(
    max_word: usize,
    max_constraints: usize,
) -> impl Strategy<Value = ConstraintSet> {
    proptest::collection::vec(
        (dtv_strategy(max_word), dtv_strategy(max_word), any::<bool>()),
        1..=max_constraints,
    )
    .prop_map(|triples| {
        let mut cs = ConstraintSet::new();
        for (l, r, left_deep) in triples {
            if l.base() == r.base() {
                continue;
            }
            let (l, r) = if left_deep {
                (l, DerivedVar::new(r.base()))
            } else {
                (DerivedVar::new(l.base()), r)
            };
            cs.add_sub(l, r);
        }
        if cs.is_empty() {
            cs.add_sub(DerivedVar::var("a"), DerivedVar::var("b"));
        }
        cs
    })
}

/// All query dtvs: bases and constants extended by words up to length 2
/// over the test alphabet.
fn query_universe(cs: &ConstraintSet) -> Vec<DerivedVar> {
    let labels = [Label::Load, Label::Store, Label::sigma(32, 0)];
    let mut out = Vec::new();
    for base in cs.base_vars() {
        let root = DerivedVar::new(base);
        out.push(root.clone());
        if base.is_const() {
            continue;
        }
        for &l1 in &labels {
            let d1 = root.clone().push(l1);
            out.push(d1.clone());
            for &l2 in &labels {
                out.push(d1.clone().push(l2));
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn transducer_complete_wrt_oracle(cs in machine_shaped_strategy(2, 5)) {
        let oracle = Oracle::close(&cs, 2);
        let mut g = ConstraintGraph::build(&cs);
        saturate(&mut g);
        for (l, r) in oracle.subtype_facts() {
            if l == r || !g.contains(l) || !g.contains(r) {
                continue;
            }
            prop_assert!(
                accepts(&g, l, r),
                "oracle derives {l} ⊑ {r} but transducer rejects it\nconstraints:\n{cs}"
            );
        }
    }

    #[test]
    fn transducer_sound_wrt_oracle(cs in constraint_set_strategy(1, 4)) {
        let oracle = Oracle::close(&cs, 3);
        let mut g = ConstraintGraph::build(&cs);
        saturate(&mut g);
        let quotient = ShapeQuotient::build(&cs);
        let universe = query_universe(&cs);
        let mut deep_oracle: Option<Oracle> = None;
        for l in &universe {
            for r in &universe {
                if l == r || !accepts(&g, l, r) {
                    continue;
                }
                // The pushdown system over-approximates on words that are
                // not derivable capabilities (§ module docs); skip those.
                if !quotient.has_var(l) || !quotient.has_var(r) {
                    continue;
                }
                if oracle.entails_sub(l, r) {
                    continue;
                }
                // Retry with a deeper universe before failing: the minimal
                // derivation may pass through longer intermediate words.
                let deep = deep_oracle.get_or_insert_with(|| Oracle::close(&cs, 5));
                prop_assert!(
                    deep.entails_sub(l, r),
                    "transducer accepts {l} ⊑ {r} but the oracle cannot derive it\nconstraints:\n{cs}"
                );
            }
        }
    }

    #[test]
    fn quotient_capabilities_agree_with_oracle(cs in constraint_set_strategy(2, 5)) {
        // Shape-quotient capability language ⟺ Figure 3 `VAR` derivability.
        let oracle = Oracle::close(&cs, 2);
        let quotient = ShapeQuotient::build(&cs);
        let universe = query_universe(&cs);
        for d in &universe {
            if d.is_const() {
                continue;
            }
            // Strict direction: the quotient must never *lose* a derivable
            // capability (a lost capability means a lost struct field).
            // The converse inclusion holds by the Theorem 3.1 construction
            // but is indistinguishable from oracle bound truncation on
            // adversarial self-referential inputs, so it is not asserted.
            if oracle.entails_var(d) {
                prop_assert!(
                    quotient.has_var(d),
                    "quotient lost capability {}\nconstraints:\n{}",
                    d,
                    cs
                );
            }
        }
    }

    #[test]
    fn simplification_preserves_interesting_constraints(
        cs in constraint_set_strategy(2, 5)
    ) {
        // Simplify with `a` interesting; every oracle-derivable constraint
        // between a-rooted materialized dtvs and constants must survive
        // simplification.
        let lattice = retypd_core::Lattice::c_types();
        let builder = retypd_core::SchemeBuilder::new(&lattice);
        let mut interesting = std::collections::BTreeSet::new();
        interesting.insert(BaseVar::var("a"));
        let (simplified, _) = builder.simplify(&cs, &interesting);

        let oracle = Oracle::close(&cs, 2);
        let mut g = ConstraintGraph::build(&cs);
        saturate(&mut g);
        let quotient = ShapeQuotient::build(&cs);
        let mut g2 = ConstraintGraph::build(&simplified);
        saturate(&mut g2);
        for (l, r) in oracle.subtype_facts() {
            if l == r || !g.contains(l) || !g.contains(r) {
                continue;
            }
            if !quotient.has_var(l) || !quotient.has_var(r) {
                continue;
            }
            let l_ok = l.base() == BaseVar::var("a") || l.is_const();
            let r_ok = r.base() == BaseVar::var("a") || r.is_const();
            if !(l_ok && r_ok) {
                continue;
            }
            if l.is_const() && r.is_const() {
                continue;
            }
            prop_assert!(
                accepts(&g2, l, r),
                "simplification lost {l} ⊑ {r}\noriginal:\n{cs}\nsimplified:\n{simplified}"
            );
        }
    }
}
