//! One routed backend: its spec, its live state, and (for spawned
//! backends) the child process the gateway supervises.
//!
//! A backend occupies a **slot** — its index in the gateway's configured
//! list. The slot, not the address, keys the consistent-hash ring: a
//! backend restarted onto a fresh ephemeral port keeps its slot and so
//! reclaims exactly the keyspace its persistent store replayed.

use std::io::BufRead;
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use retypd_core::sync::Mutex;

use crate::health::ProbeReport;
use retypd_serve::launch::parse_ready_banner;

/// How a slot's backend comes to exist.
#[derive(Clone, Debug)]
pub enum BackendSpec {
    /// The gateway spawns and supervises a server process (normally the
    /// sibling `serve_backend` binary). The child binds an ephemeral
    /// port and announces it on stdout via the readiness banner; on
    /// eviction the gateway kills and respawns it with the *same*
    /// persist dir, so the replacement warm-starts from the replayed
    /// store.
    Spawn {
        /// The server executable.
        program: PathBuf,
        /// Extra arguments (shard count, queue depth, chaos flags, …).
        /// `--addr` and `--persist-dir` are appended by the gateway.
        args: Vec<String>,
        /// This slot's persistent store directory, if any.
        persist_dir: Option<PathBuf>,
    },
    /// An already-running server the gateway routes to but does not own:
    /// it is probed and evicted like any other backend, but never
    /// spawned, killed, or restarted. In-process test servers and
    /// externally managed fleets use this.
    External {
        /// Where the server listens.
        addr: SocketAddr,
    },
}

/// Mutable per-backend state, guarded by one lock (all touches are
/// short: no I/O is done under it except child spawn/kill).
#[derive(Debug, Default)]
struct Runtime {
    addr: Option<SocketAddr>,
    pid: u64,
    start_ns: u64,
    healthy: bool,
    child: Option<Child>,
    /// Idle pooled connections, newest last. A connection is only ever
    /// pooled after a clean single-frame exchange.
    idle: Vec<TcpStream>,
}

/// Cap on pooled idle connections per backend; beyond this, extras are
/// simply closed.
const POOL_CAP: usize = 8;

/// A slot's backend: spec plus supervised runtime state.
#[derive(Debug)]
pub struct Backend {
    /// This backend's stable slot index.
    pub slot: usize,
    /// How it is created (and whether it can be restarted).
    pub spec: BackendSpec,
    state: Mutex<Runtime>,
}

impl Backend {
    /// A backend with no live state; [`Backend::launch`] brings it up.
    pub fn new(slot: usize, spec: BackendSpec) -> Backend {
        Backend {
            slot,
            spec,
            state: Mutex::new(Runtime::default()),
        }
    }

    /// Ensures the backend has an address: spawns the child and waits for
    /// its readiness banner (spawn specs), or simply adopts the
    /// configured address (external specs). Idempotent while the child
    /// lives. Does **not** mark the backend healthy — that is the
    /// prober's verdict.
    pub fn launch(&self, banner_timeout: Duration) -> Result<SocketAddr, String> {
        let mut st = self.state.lock().expect("backend state");
        match &self.spec {
            BackendSpec::External { addr } => {
                st.addr = Some(*addr);
                Ok(*addr)
            }
            BackendSpec::Spawn {
                program,
                args,
                persist_dir,
            } => {
                if st.child.is_some() {
                    if let Some(addr) = st.addr {
                        return Ok(addr);
                    }
                }
                let mut cmd = Command::new(program);
                cmd.args(args).arg("--addr").arg("127.0.0.1:0");
                if let Some(dir) = persist_dir {
                    cmd.arg("--persist-dir").arg(dir);
                }
                cmd.stdout(Stdio::piped())
                    .stderr(Stdio::inherit())
                    .stdin(Stdio::null());
                let mut child = cmd
                    .spawn()
                    .map_err(|e| format!("slot {}: spawn {program:?}: {e}", self.slot))?;
                let stdout = child.stdout.take().expect("stdout was piped");
                match wait_for_banner(stdout, banner_timeout) {
                    Ok((addr, pid, _shards)) => {
                        st.addr = Some(addr);
                        st.pid = pid as u64;
                        st.child = Some(child);
                        Ok(addr)
                    }
                    Err(e) => {
                        let _ = child.kill();
                        let _ = child.wait();
                        Err(format!("slot {}: {e}", self.slot))
                    }
                }
            }
        }
    }

    /// Kills the child (spawn specs) and forgets all live state. The
    /// pool is dropped too: its sockets point at a dead process.
    pub fn kill(&self) {
        let mut st = self.state.lock().expect("backend state");
        if let Some(mut child) = st.child.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
        st.addr = match &self.spec {
            BackendSpec::External { addr } => Some(*addr),
            BackendSpec::Spawn { .. } => None,
        };
        st.healthy = false;
        st.idle.clear();
    }

    /// Whether this backend can be restarted by the supervisor (only
    /// spawned children can; external servers merely get re-probed).
    pub fn restartable(&self) -> bool {
        matches!(self.spec, BackendSpec::Spawn { .. })
    }

    /// True when a spawned child has exited on its own (crash, kill -9).
    /// Reaps the zombie as a side effect. Always false for externals.
    pub fn child_exited(&self) -> bool {
        let mut st = self.state.lock().expect("backend state");
        match st.child.as_mut().map(Child::try_wait) {
            Some(Ok(Some(_status))) => {
                st.child = None;
                st.addr = None;
                st.idle.clear();
                true
            }
            _ => false,
        }
    }

    /// The backend's current address, if it has one.
    pub fn addr(&self) -> Option<SocketAddr> {
        self.state.lock().expect("backend state").addr
    }

    /// The last known pid (from the banner or a probe); 0 when unknown.
    pub fn pid(&self) -> u64 {
        self.state.lock().expect("backend state").pid
    }

    /// The last probed process start time (UNIX-epoch ns; 0 when never
    /// probed). A restart shows up as this value increasing.
    pub fn start_ns(&self) -> u64 {
        self.state.lock().expect("backend state").start_ns
    }

    /// Whether the backend is currently routed to.
    pub fn healthy(&self) -> bool {
        self.state.lock().expect("backend state").healthy
    }

    /// Sets health, returning the previous value (so the supervisor can
    /// count transitions exactly once).
    pub fn set_healthy(&self, healthy: bool) -> bool {
        let mut st = self.state.lock().expect("backend state");
        let was = st.healthy;
        st.healthy = healthy;
        if !healthy {
            // Pooled sockets to an unhealthy backend are suspect.
            st.idle.clear();
        }
        was
    }

    /// Records what a successful probe learned (pid and start time, for
    /// restart detection and operator visibility).
    pub fn note_probe(&self, report: &ProbeReport) {
        let mut st = self.state.lock().expect("backend state");
        if report.stats.pid != 0 {
            st.pid = report.stats.pid;
        }
        if report.stats.start_ns != 0 {
            st.start_ns = report.stats.start_ns;
        }
    }

    /// A connection to the backend: pooled if one is idle, else freshly
    /// connected with `timeout`.
    pub fn connect(&self, timeout: Duration) -> Result<TcpStream, String> {
        let (addr, pooled) = {
            let mut st = self.state.lock().expect("backend state");
            (st.addr, st.idle.pop())
        };
        if let Some(conn) = pooled {
            return Ok(conn);
        }
        let addr = addr.ok_or_else(|| format!("slot {} has no address", self.slot))?;
        let conn = TcpStream::connect_timeout(&addr, timeout)
            .map_err(|e| format!("slot {} ({addr}): connect: {e}", self.slot))?;
        // Frames go out prefix-then-payload; nodelay keeps the payload
        // write from waiting out a Nagle/delayed-ACK round.
        conn.set_nodelay(true).ok();
        Ok(conn)
    }

    /// Returns a connection to the pool after a clean exchange.
    pub fn pool(&self, conn: TcpStream) {
        let mut st = self.state.lock().expect("backend state");
        if st.healthy && st.idle.len() < POOL_CAP {
            st.idle.push(conn);
        }
    }
}

/// Reads the child's stdout until the readiness banner appears, bounded
/// by `timeout`. The read happens on a helper thread (BufRead has no
/// native deadline); after the banner the thread keeps draining stdout
/// so a chatty child can never fill the pipe and wedge.
fn wait_for_banner(
    stdout: std::process::ChildStdout,
    timeout: Duration,
) -> Result<(SocketAddr, u32, usize), String> {
    let (tx, rx) = retypd_core::sync::mpsc::channel();
    retypd_core::sync::thread::spawn(move || {
        let mut reader = std::io::BufReader::new(stdout);
        let mut line = String::new();
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) => {
                    let _ = tx.send(None);
                    break;
                }
                Ok(_) => {
                    if let Some(parsed) = parse_ready_banner(line.trim_end()) {
                        let _ = tx.send(Some(parsed));
                        // Keep draining so later writes cannot block the
                        // child; EOF ends the thread.
                        let mut sink = String::new();
                        while matches!(reader.read_line(&mut sink), Ok(n) if n > 0) {
                            sink.clear();
                        }
                        break;
                    }
                }
                Err(_) => {
                    let _ = tx.send(None);
                    break;
                }
            }
        }
    });
    match rx.recv_timeout(timeout) {
        Ok(Some(parsed)) => Ok(parsed),
        Ok(None) => Err("backend exited before announcing readiness".into()),
        Err(_) => Err(format!("no readiness banner within {timeout:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn external_backend_launches_to_its_configured_addr() {
        // Port 0: the External spec never binds, the addr is only echoed —
        // and a fixed port would trip the no-fixed-ports lint for nothing.
        let addr: SocketAddr = "127.0.0.1:0".parse().unwrap();
        let b = Backend::new(3, BackendSpec::External { addr });
        assert_eq!(b.launch(Duration::from_secs(1)).unwrap(), addr);
        assert!(!b.restartable());
        assert!(!b.healthy(), "health is the prober's verdict, not launch's");
        assert!(!b.child_exited());
    }

    #[test]
    fn health_transitions_report_the_previous_state() {
        let addr: SocketAddr = "127.0.0.1:0".parse().unwrap();
        let b = Backend::new(0, BackendSpec::External { addr });
        assert!(!b.set_healthy(true));
        assert!(b.set_healthy(true), "idempotent re-mark sees healthy");
        assert!(b.set_healthy(false));
        assert!(!b.set_healthy(false));
    }

    #[test]
    fn spawn_failure_is_an_error_not_a_panic() {
        let b = Backend::new(
            1,
            BackendSpec::Spawn {
                program: PathBuf::from("/nonexistent/retypd-serve-backend"),
                args: vec![],
                persist_dir: None,
            },
        );
        let err = b.launch(Duration::from_secs(1)).unwrap_err();
        assert!(err.contains("slot 1"), "error names the slot: {err}");
    }
}
