//! Recovery of pointer-parameter `const` annotations (§6.4): Retypd
//! models read and write capabilities separately (`.load` / `.store`), so
//! a parameter that is only ever loaded through is recovered as `const`.
//!
//! ```text
//! cargo run --example const_recovery
//! ```

use retypd::core::{CTypeBuilder, Lattice, Solver, Symbol};
use retypd::minic::codegen::compile;
use retypd::minic::parse_module;

fn main() {
    let src = "
        struct buf { int len; int cap; };

        // Only reads through its parameter: const is recoverable.
        int get_len(const struct buf* b) {
            return b->len;
        }

        // Writes through its parameter: not const.
        int set_len(struct buf* b, int n) {
            b->len = n;
            return n;
        }

        // Reads one field, writes another: still not const.
        int bump(struct buf* b) {
            int l = b->len;
            b->len = l + 1;
            return l;
        }
    ";
    let module = parse_module(src).expect("parses");
    let (mir, truth) = compile(&module).expect("compiles");
    let program = retypd::congen::generate(&mir);
    let lattice = Lattice::c_types();
    let result = Solver::new(&lattice).infer(&program);

    for f in ["get_len", "set_len", "bump"] {
        let proc = &result.procs[&Symbol::intern(f)];
        let sk = proc.sketch.as_ref().expect("sketch");
        let mut b = CTypeBuilder::new(&lattice);
        let sig = b.function_type(sk);
        let table = b.into_table();
        let declared_const = matches!(
            truth.func(f).unwrap().params[0].ty.untagged(),
            retypd::minic::SrcType::Ptr { is_const: true, .. }
        );
        println!(
            "{:<8} declared {}  inferred: {}",
            f,
            if declared_const { "const    " } else { "non-const" },
            retypd::core::ctype::render_signature(f, &sig, &table)
        );
    }
    println!("\n(the policy of Example 4.1: const iff .load without .store)");
}
