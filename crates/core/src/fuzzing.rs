//! Fuzzing entry points for the textual parsers.
//!
//! The wire protocol ships programs and lattices as canonical text, so the
//! parsers in [`crate::parse`] and [`crate::lattice`] sit directly on the
//! remote attack surface: every byte a client sends eventually reaches one
//! of them. These functions package each parser with its *contract* so a
//! fuzzer (or a property test) can drive them with one call per input:
//!
//! 1. **No panic.** Arbitrary input must produce `Ok` or `Err`, never an
//!    unwind — a panic on a connection thread shows up remotely as a
//!    dropped connection at best and an aborted process at worst.
//! 2. **Display/reparse fixpoint.** When input *does* parse, rendering the
//!    result and reparsing it must reproduce the same value. The driver
//!    fingerprints canonical text and the wire protocol round-trips it, so
//!    a value whose rendering parses differently silently changes meaning
//!    (or cache identity) across the wire.
//!
//! Each checker returns whether the input parsed, so harnesses can report
//! valid/invalid ratios; contract violations are `panic!`s with enough
//! context to reproduce (fuzz harnesses run these under `catch_unwind`).

use std::str::FromStr;

use crate::lattice::LatticeDescriptor;
use crate::parse::{parse_constraint_set, parse_derived_var};

/// Drives [`parse_derived_var`]: parse, and on success check the
/// display/reparse fixpoint. Returns whether the input parsed.
///
/// # Panics
///
/// Panics when a parsed value's rendering fails to reparse to the same
/// value — a wire-fidelity bug, since derived variables travel as text.
pub fn check_derived_var(input: &str) -> bool {
    let Ok(dv) = parse_derived_var(input) else {
        return false;
    };
    let rendered = dv.to_string();
    match parse_derived_var(&rendered) {
        Ok(back) if back == dv => true,
        Ok(back) => panic!(
            "derived var display/reparse diverged: {input:?} -> {dv:?} -> {rendered:?} -> {back:?}"
        ),
        Err(e) => panic!(
            "derived var rendering does not reparse: {input:?} -> {rendered:?}: {e}"
        ),
    }
}

/// Drives [`parse_constraint_set`]: parse, and on success check the
/// display/reparse fixpoint. Returns whether the input parsed.
///
/// # Panics
///
/// Panics when a parsed set's rendering fails to reparse identically —
/// the wire protocol and the driver's content fingerprints both rely on
/// this round trip.
pub fn check_constraint_set(input: &str) -> bool {
    let Ok(cs) = parse_constraint_set(input) else {
        return false;
    };
    let rendered = cs.to_string();
    match parse_constraint_set(&rendered) {
        Ok(back) if back == cs => true,
        Ok(_) => panic!(
            "constraint set display/reparse diverged for input {input:?} (rendered {rendered:?})"
        ),
        Err(e) => panic!(
            "constraint set rendering does not reparse: {input:?} -> {rendered:?}: {e}"
        ),
    }
}

/// Drives [`LatticeDescriptor`]'s `FromStr`: parse, and on success check
/// the display/reparse fixpoint plus fingerprint stability. Returns
/// whether the input parsed.
///
/// # Panics
///
/// Panics when a parsed descriptor's canonical text reparses to a
/// different descriptor (or one with a different fingerprint) — the
/// fingerprint is a cache key, so this would let two identities collide
/// or one identity split.
pub fn check_lattice_descriptor(input: &str) -> bool {
    let Ok(d) = LatticeDescriptor::from_str(input) else {
        return false;
    };
    let rendered = d.to_string();
    match LatticeDescriptor::from_str(&rendered) {
        Ok(back) if back == d && back.fingerprint() == d.fingerprint() => true,
        Ok(back) => panic!(
            "lattice descriptor display/reparse diverged: {input:?} -> {rendered:?} -> {back:?}"
        ),
        Err(e) => panic!(
            "lattice descriptor rendering does not reparse: {input:?} -> {rendered:?}: {e}"
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkers_accept_canonical_forms() {
        assert!(check_derived_var("f.in_stack0.load.σ32@4"));
        assert!(check_derived_var("#FileDescriptor"));
        assert!(check_derived_var("$custom.load"));
        assert!(check_constraint_set(
            "f.in_stack0 <= t; t.load.σ32@0 <= int; VAR q.load; Add(a, b; c)"
        ));
        assert!(check_lattice_descriptor(
            "lattice demo { bot mid top ; bot <= mid, mid <= top }"
        ));
    }

    #[test]
    fn checkers_reject_garbage_without_panicking() {
        for junk in ["", "x.banana", "a b c ⊑", "lattice {", "Add(a, b, c)"] {
            check_derived_var(junk);
            check_constraint_set(junk);
            check_lattice_descriptor(junk);
        }
    }

    #[test]
    fn custom_constants_keep_their_sigil_through_the_round_trip() {
        // `$name` marks a constant whose name is not in the well-known
        // list; its rendering must preserve const-ness or a custom-lattice
        // constraint silently degrades to a variable over the wire.
        assert!(check_constraint_set("x <= $custom"));
        assert!(check_constraint_set("$lo <= y.load; VAR $lo.load"));
    }
}
