//! Product model tests: the real production types under the checker.
//!
//! These exist only under `--cfg retypd_model_check`, which compiles
//! the whole dependency tree with the sync facade switched to the
//! modelled doubles — the exact `Admission` CAS loop, `ShardStatsCells`
//! publish path, `Interner` double-checked locking, and `Histogram`
//! record path that ship in release builds become the checked code.
//! CI runs this as the bounded model-check step:
//!
//! ```text
//! RUSTFLAGS='--cfg retypd_model_check' CARGO_TARGET_DIR=target/model \
//!     cargo test -p retypd-conc-check
//! ```
#![cfg(retypd_model_check)]

use retypd_conc_check::{registry, DEFAULT_MAX_ITERATIONS, DEFAULT_SEED};

/// Looks a product model up by name; its presence in the registry is
/// itself part of the contract.
fn model(name: &str) -> retypd_conc_check::ModelDef {
    registry()
        .into_iter()
        .find(|d| d.name == name)
        .unwrap_or_else(|| panic!("product model {name} missing from the registry"))
}

fn assert_clean(name: &str) {
    let def = model(name);
    let report = def.check(DEFAULT_SEED, DEFAULT_MAX_ITERATIONS);
    assert!(
        report.failure.is_none(),
        "{name} failed: {:?}",
        report.failure
    );
    assert!(
        report.complete || report.iterations >= def.cap,
        "{name} neither exhausted its bounded space nor reached its cap of {}",
        def.cap
    );
    assert!(
        report.iterations >= 1000,
        "{name} explored only {} interleavings (< 1000)",
        report.iterations
    );
}

#[test]
fn interner_double_miss_inserts_once() {
    assert_clean("interner_double_miss");
}

#[test]
fn histogram_concurrent_records_are_exact_after_join() {
    assert_clean("histogram_concurrent_record");
}

#[test]
fn admission_batches_are_all_or_nothing() {
    assert_clean("admission_all_or_nothing");
}

#[test]
fn admission_drain_elects_exactly_one_winner() {
    assert_clean("admission_drain_election");
}

#[test]
fn admission_slot_guard_releases_under_contention() {
    assert_clean("admission_slot_guard");
}

#[test]
fn stats_cells_snapshot_mixes_only_published_values() {
    assert_clean("stats_cells_publish_snapshot");
}
