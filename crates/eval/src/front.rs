//! The Retypd front-end: whole pipeline plus sketch → [`InfTy`] conversion.

use retypd_baselines::{InfTy, InferredFunc, InferredProgram};
use retypd_core::solver::SolverResult;
use retypd_core::{Label, Lattice, Program, Sketch, Solver};

/// Depth bound when unrolling sketches into trees for scoring (the sketch
/// itself is recursive; scoring trees are finite).
const SCORE_DEPTH: u32 = 4;

/// Runs Retypd on a constraint program and converts the results.
pub fn infer_retypd(program: &Program, lattice: &Lattice) -> InferredProgram {
    let result = Solver::new(lattice).infer(program);
    convert_result(&result, lattice)
}

/// Converts an existing solver result (lets callers time the solve
/// separately).
pub fn convert_result(result: &SolverResult, lattice: &Lattice) -> InferredProgram {
    let mut out = InferredProgram::new();
    for (name, proc) in &result.procs {
        let mut inferred = InferredFunc::default();
        if let Some(sk) = &proc.sketch {
            let root = sk.root();
            for (l, s) in sk.edges(root) {
                match l {
                    Label::In(loc) => {
                        inferred.params.insert(loc, node_to_infty(sk, s, lattice, 0));
                        let has_load = sk.step(s, Label::Load).is_some();
                        let has_store = sk.step(s, Label::Store).is_some();
                        if has_load || has_store {
                            inferred.const_params.insert(loc, has_load && !has_store);
                        }
                    }
                    Label::Out(_) => {
                        inferred.ret = Some(node_to_infty(sk, s, lattice, 0));
                    }
                    _ => {}
                }
            }
        }
        out.insert(*name, inferred);
    }
    out
}

fn node_to_infty(sk: &Sketch, s: u32, lattice: &Lattice, depth: u32) -> InfTy {
    if depth > SCORE_DEPTH {
        return InfTy::Unknown;
    }
    let pointee = sk.step(s, Label::Load).or_else(|| sk.step(s, Label::Store));
    if let Some(p) = pointee {
        let fields: Vec<(i32, InfTy)> = sk
            .edges(p)
            .filter_map(|(l, t)| match l {
                Label::Sigma { offset, .. } => {
                    Some((offset, node_to_infty(sk, t, lattice, depth + 1)))
                }
                _ => None,
            })
            .collect();
        if fields.is_empty() {
            return InfTy::Ptr(Box::new(node_to_infty(sk, p, lattice, depth + 1)));
        }
        if fields.len() == 1 && fields[0].0 == 0 {
            return InfTy::Ptr(Box::new(fields.into_iter().next().expect("one").1));
        }
        return InfTy::Ptr(Box::new(InfTy::Struct(fields)));
    }
    let (lower, upper) = sk.interval(s);
    if lower == lattice.bottom() && upper == lattice.top() {
        return InfTy::Unknown;
    }
    InfTy::Scalar {
        mark: lattice.name(sk.mark(s)).to_owned(),
        lower: lattice.name(lower).to_owned(),
        upper: lattice.name(upper).to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use retypd_core::parse::parse_constraint_set;
    use retypd_core::{Loc, Procedure, Symbol};

    #[test]
    fn close_last_shape_converts() {
        let lattice = Lattice::c_types();
        let mut program = Program::new();
        program.procs.push(Procedure {
            name: Symbol::intern("cl"),
            constraints: parse_constraint_set(
                "
                cl.in_stack0 <= t
                t.load.σ32@0 <= t
                t.load.σ32@4 <= #FileDescriptor
                int <= cl.out_eax
                ",
            )
            .unwrap(),
            callsites: vec![],
        });
        let inferred = infer_retypd(&program, &lattice);
        let f = &inferred[&Symbol::intern("cl")];
        let p = &f.params[&Loc::Stack(0)];
        // Pointer to a struct whose field 0 is again a pointer (recursion,
        // unrolled to the scoring depth) and whose field 4 is the tagged int.
        match p {
            InfTy::Ptr(inner) => match inner.as_ref() {
                InfTy::Struct(fields) => {
                    assert!(fields.iter().any(|(o, _)| *o == 0));
                    let handle = fields.iter().find(|(o, _)| *o == 4).expect("handle");
                    match &handle.1 {
                        InfTy::Scalar { upper, .. } => assert_eq!(upper, "#FileDescriptor"),
                        other => panic!("{other}"),
                    }
                }
                other => panic!("expected struct pointee, got {other}"),
            },
            other => panic!("expected pointer, got {other}"),
        }
        assert_eq!(f.const_params.get(&Loc::Stack(0)), Some(&true));
        assert!(f.ret.is_some());
    }
}
