//! Criterion benchmark: the full pipeline (compile → constraints → solve)
//! on generated programs of increasing size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use retypd_core::{Lattice, Solver};
use retypd_minic::codegen::compile;
use retypd_minic::genprog::{GenConfig, ProgramGenerator};

fn bench(c: &mut Criterion) {
    let lattice = Lattice::c_types();
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    for functions in [10usize, 40, 120] {
        let module = ProgramGenerator::new(GenConfig {
            seed: 7,
            functions,
            ..GenConfig::default()
        })
        .generate();
        let (mir, _) = compile(&module).unwrap();
        let program = retypd_congen::generate(&mir);
        group.bench_with_input(
            BenchmarkId::from_parameter(mir.instruction_count()),
            &program,
            |b, p| b.iter(|| Solver::new(&lattice).infer(p)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
