//! Property tests for `serve::json`: every value the encoder can emit must
//! parse back to the same value (the wire protocol's determinism tests
//! compare reply bytes, so encode must be a fixpoint of parse∘encode), and
//! the parser must refuse nesting past its recursion bound instead of
//! overflowing the thread stack.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use retypd_serve::json::{Json, MAX_DEPTH};

/// Characters exercising the writer's escape paths (quotes, backslash,
/// control bytes) and the parser's UTF-8 fast path (multi-byte runs).
const STRING_POOL: &[char] = &[
    'a', 'z', '0', '_', ' ', '/', '"', '\\', '\n', '\r', '\t', '\u{1}', '\u{1f}', 'σ', '⊑',
    'é', '😀',
];

fn gen_string(rng: &mut StdRng) -> String {
    (0..rng.gen_range(0..12usize))
        .map(|_| STRING_POOL[rng.gen_range(0..STRING_POOL.len())])
        .collect()
}

/// A random JSON value with container nesting bounded by `depth`.
fn gen_value(rng: &mut StdRng, depth: usize) -> Json {
    let pick = if depth == 0 {
        rng.gen_range(0..4u32)
    } else {
        rng.gen_range(0..6u32)
    };
    match pick {
        0 => Json::Null,
        1 => Json::Bool(rng.gen()),
        // Numbers are literal text; cover integers (incl. > 2^53, which an
        // f64 model would corrupt), negatives, and decimals.
        2 => match rng.gen_range(0..3u32) {
            0 => Json::u64(rng.gen()),
            1 => Json::Num(format!("-{}", rng.gen::<u32>())),
            _ => Json::Num(format!("{}.{}", rng.gen::<u16>(), rng.gen_range(0..1000u32))),
        },
        3 => Json::Str(gen_string(rng)),
        4 => Json::Arr(
            (0..rng.gen_range(0..4usize))
                .map(|_| gen_value(rng, depth - 1))
                .collect(),
        ),
        _ => Json::Obj(
            (0..rng.gen_range(0..4usize))
                .map(|_| (gen_string(rng), gen_value(rng, depth - 1)))
                .collect(),
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1024))]

    #[test]
    fn encode_then_parse_is_the_identity(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let depth = rng.gen_range(0..8usize);
        let v = gen_value(&mut rng, depth);
        let enc = v.encode();
        let back = Json::parse(&enc).expect("encoder output must parse");
        prop_assert_eq!(&back, &v);
        // And the encoding is deterministic (a fixpoint, not just stable).
        prop_assert_eq!(back.encode(), enc);
    }

    #[test]
    fn nesting_past_the_limit_is_rejected(extra in any::<u8>()) {
        // From 1 past the bound up to deep bomb territory: always a clean
        // error, never deeper recursion.
        let depth = MAX_DEPTH + 1 + extra as usize * 16;
        let deep = format!("{}1{}", "[".repeat(depth), "]".repeat(depth));
        let err = Json::parse(&deep).expect_err("over-deep input must be refused");
        prop_assert!(err.to_string().contains("nesting"), "{}", err);
    }
}

#[test]
fn the_limit_itself_round_trips() {
    // A value at exactly MAX_DEPTH encodes and parses back — the bound
    // rejects only what is *deeper* than anything the protocol emits.
    let mut v = Json::u64(7);
    for _ in 0..MAX_DEPTH {
        v = Json::Arr(vec![v]);
    }
    let enc = v.encode();
    assert_eq!(Json::parse(&enc).expect("at-limit value parses"), v);
}
