//! A small recursive-descent parser for mini-C, so tests and examples can
//! state programs as source text.
//!
//! ```
//! let src = "
//!     struct LL { struct LL* next; int handle; };
//!     int close_last(const struct LL* list) {
//!         while (list->next != 0) { list = list->next; }
//!         return close(list->handle);
//!     }
//! ";
//! let module = retypd_minic::parse_module(src).unwrap();
//! assert_eq!(module.funcs.len(), 1);
//! ```

use std::fmt;

use crate::ast::{BinKind, CmpKind, Expr, FuncDef, Module, SrcType, Stmt, StructDef};

/// A parse error with a rough position.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    message: String,
    near: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error: {} near {:?}", self.message, self.near)
    }
}

impl std::error::Error for ParseError {}

#[derive(Clone, PartialEq, Eq, Debug)]
enum Tok {
    Ident(String),
    Int(i64),
    Punct(&'static str),
}

fn lex(src: &str) -> Result<Vec<Tok>, ParseError> {
    let mut out = Vec::new();
    let b = src.as_bytes();
    let mut i = 0;
    while i < b.len() {
        let c = b[i] as char;
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c == '/' && i + 1 < b.len() && b[i + 1] as char == '/' {
            while i < b.len() && b[i] as char != '\n' {
                i += 1;
            }
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' || c == '#' {
            let start = i;
            i += 1;
            while i < b.len() && ((b[i] as char).is_ascii_alphanumeric() || b[i] as char == '_') {
                i += 1;
            }
            out.push(Tok::Ident(src[start..i].to_owned()));
            continue;
        }
        if c.is_ascii_digit()
            || (c == '-' && i + 1 < b.len() && (b[i + 1] as char).is_ascii_digit())
        {
            let start = i;
            i += 1;
            while i < b.len() && (b[i] as char).is_ascii_digit() {
                i += 1;
            }
            let v: i64 = src[start..i].parse().map_err(|_| ParseError {
                message: "bad integer".into(),
                near: src[start..i].to_owned(),
            })?;
            out.push(Tok::Int(v));
            continue;
        }
        let two = if i + 1 < b.len() { &src[i..i + 2] } else { "" };
        let tok2 = ["->", "==", "!=", "<=", ">="]
            .iter()
            .find(|&&p| p == two)
            .copied();
        if let Some(p) = tok2 {
            out.push(Tok::Punct(p));
            i += 2;
            continue;
        }
        let tok1 = [
            "{", "}", "(", ")", ";", ",", "*", "&", "+", "-", "=", "<", ">", "|", "^",
        ]
        .iter()
        .find(|&&p| p == &src[i..i + 1])
        .copied();
        match tok1 {
            Some(p) => {
                out.push(Tok::Punct(p));
                i += 1;
            }
            None => {
                return Err(ParseError {
                    message: format!("unexpected character {c:?}"),
                    near: src[i..src.len().min(i + 16)].to_owned(),
                })
            }
        }
    }
    Ok(out)
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
    module: Module,
}

impl Parser {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            message: msg.into(),
            near: format!("{:?}", &self.toks[self.pos.min(self.toks.len().saturating_sub(1))..self.toks.len().min(self.pos + 4)]),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn peek_ident(&self) -> Option<&str> {
        match self.peek() {
            Some(Tok::Ident(s)) => Some(s),
            _ => None,
        }
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if let Some(Tok::Punct(q)) = self.peek() {
            if *q == p {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), ParseError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(self.err(format!("expected {p:?}")))
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek_ident() == Some(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek() {
            Some(Tok::Ident(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            _ => Err(self.err("expected identifier")),
        }
    }

    fn is_type_start(&self) -> bool {
        matches!(
            self.peek_ident(),
            Some("int" | "uint" | "char" | "float" | "void" | "struct" | "const")
        ) || self.peek_ident().is_some_and(|s| s.starts_with('#'))
    }

    fn parse_type(&mut self) -> Result<SrcType, ParseError> {
        let is_const = self.eat_kw("const");
        let mut base = if self.eat_kw("int") {
            SrcType::Int
        } else if self.eat_kw("uint") {
            SrcType::UInt
        } else if self.eat_kw("char") {
            SrcType::Char
        } else if self.eat_kw("float") {
            SrcType::Float
        } else if self.eat_kw("void") {
            SrcType::Void
        } else if self.eat_kw("struct") {
            let name = self.ident()?;
            let idx = match self.module.struct_by_name(&name) {
                Some(i) => i,
                None => {
                    // Forward reference: reserve a slot.
                    self.module.structs.push(StructDef {
                        name: name.clone(),
                        fields: Vec::new(),
                    });
                    self.module.structs.len() - 1
                }
            };
            SrcType::Struct(idx)
        } else if let Some(tag) = self.peek_ident().filter(|s| s.starts_with('#')) {
            let tag = tag.to_owned();
            self.pos += 1;
            // `#Tag int`-style tagged scalars.
            let inner = self.parse_type()?;
            SrcType::Tagged(tag, Box::new(inner))
        } else {
            return Err(self.err("expected type"));
        };
        let mut first_ptr = true;
        while self.eat_punct("*") {
            base = SrcType::Ptr {
                pointee: Box::new(base),
                is_const: is_const && first_ptr,
            };
            first_ptr = false;
        }
        Ok(base)
    }

    fn parse_module(&mut self) -> Result<(), ParseError> {
        while self.peek().is_some() {
            let fastcall = self.eat_kw("fastcall");
            if !fastcall && self.peek_ident() == Some("struct") {
                // Could be a struct definition or a function returning a
                // struct pointer; look ahead for '{' after the name.
                if let Some(Tok::Ident(_)) = self.toks.get(self.pos + 1) {
                    if self.toks.get(self.pos + 2) == Some(&Tok::Punct("{")) {
                        self.parse_struct()?;
                        continue;
                    }
                }
            }
            self.parse_func(fastcall)?;
        }
        Ok(())
    }

    fn parse_struct(&mut self) -> Result<(), ParseError> {
        self.expect_kw("struct")?;
        let name = self.ident()?;
        let idx = match self.module.struct_by_name(&name) {
            Some(i) => i,
            None => {
                self.module.structs.push(StructDef {
                    name: name.clone(),
                    fields: Vec::new(),
                });
                self.module.structs.len() - 1
            }
        };
        self.expect_punct("{")?;
        let mut fields = Vec::new();
        while !self.eat_punct("}") {
            let ty = self.parse_type()?;
            let fname = self.ident()?;
            self.expect_punct(";")?;
            fields.push((fname, ty));
        }
        self.expect_punct(";")?;
        self.module.structs[idx].fields = fields;
        Ok(())
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected keyword {kw}")))
        }
    }

    fn parse_func(&mut self, fastcall: bool) -> Result<(), ParseError> {
        let ret = self.parse_type()?;
        let name = self.ident()?;
        self.expect_punct("(")?;
        let mut params = Vec::new();
        if !self.eat_punct(")") {
            loop {
                // `f(void)`: an empty parameter list.
                if self.peek_ident() == Some("void")
                    && self.toks.get(self.pos + 1) == Some(&Tok::Punct(")"))
                {
                    self.pos += 2;
                    break;
                }
                let ty = self.parse_type()?;
                let pname = self.ident()?;
                params.push((pname, ty));
                if self.eat_punct(")") {
                    break;
                }
                self.expect_punct(",")?;
            }
        }
        let body = self.parse_block()?;
        self.module.funcs.push(FuncDef {
            name,
            params,
            ret,
            body,
            fastcall,
        });
        Ok(())
    }

    fn parse_block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect_punct("{")?;
        let mut out = Vec::new();
        while !self.eat_punct("}") {
            out.push(self.parse_stmt()?);
        }
        Ok(out)
    }

    fn parse_stmt(&mut self) -> Result<Stmt, ParseError> {
        if self.eat_kw("return") {
            if self.eat_punct(";") {
                return Ok(Stmt::Return(None));
            }
            let e = self.parse_expr()?;
            self.expect_punct(";")?;
            return Ok(Stmt::Return(Some(e)));
        }
        if self.eat_kw("if") {
            self.expect_punct("(")?;
            let c = self.parse_expr()?;
            self.expect_punct(")")?;
            let then_b = self.parse_block()?;
            let else_b = if self.eat_kw("else") {
                self.parse_block()?
            } else {
                Vec::new()
            };
            return Ok(Stmt::If(c, then_b, else_b));
        }
        if self.eat_kw("while") {
            self.expect_punct("(")?;
            let c = self.parse_expr()?;
            self.expect_punct(")")?;
            let body = self.parse_block()?;
            return Ok(Stmt::While(c, body));
        }
        if self.is_type_start() {
            let ty = self.parse_type()?;
            let name = self.ident()?;
            self.expect_punct("=")?;
            let init = self.parse_expr()?;
            self.expect_punct(";")?;
            return Ok(Stmt::Decl(name, ty, init));
        }
        // Expression or assignment.
        let lhs = self.parse_expr()?;
        if self.eat_punct("=") {
            let rhs = self.parse_expr()?;
            self.expect_punct(";")?;
            return match lhs {
                Expr::Var(n) => Ok(Stmt::Assign(n, rhs)),
                Expr::Field(base, field) => Ok(Stmt::StoreField(*base, field, rhs)),
                Expr::Deref(p) => Ok(Stmt::StoreDeref(*p, rhs)),
                _ => Err(self.err("invalid assignment target")),
            };
        }
        self.expect_punct(";")?;
        Ok(Stmt::Expr(lhs))
    }

    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.parse_add()?;
        let op = match self.peek() {
            Some(Tok::Punct("==")) => Some(CmpKind::Eq),
            Some(Tok::Punct("!=")) => Some(CmpKind::Ne),
            Some(Tok::Punct("<=")) => Some(CmpKind::Le),
            Some(Tok::Punct(">=")) => Some(CmpKind::Ge),
            Some(Tok::Punct("<")) => Some(CmpKind::Lt),
            Some(Tok::Punct(">")) => Some(CmpKind::Gt),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let rhs = self.parse_add()?;
            return Ok(Expr::Cmp(op, Box::new(lhs), Box::new(rhs)));
        }
        Ok(lhs)
    }

    fn parse_add(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Punct("+")) => Some(BinKind::Add),
                Some(Tok::Punct("-")) => Some(BinKind::Sub),
                Some(Tok::Punct("*")) => Some(BinKind::Mul),
                Some(Tok::Punct("&")) => Some(BinKind::And),
                Some(Tok::Punct("|")) => Some(BinKind::Or),
                Some(Tok::Punct("^")) => Some(BinKind::Xor),
                _ => None,
            };
            let Some(op) = op else { break };
            self.pos += 1;
            let rhs = self.parse_unary()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        if self.eat_punct("*") {
            let inner = self.parse_unary()?;
            return Ok(Expr::Deref(Box::new(inner)));
        }
        if self.eat_punct("&") {
            let name = self.ident()?;
            return Ok(Expr::AddrOf(name));
        }
        // Cast: '(' type ')' unary.
        if self.peek() == Some(&Tok::Punct("(")) {
            let save = self.pos;
            self.pos += 1;
            if self.is_type_start() {
                if let Ok(ty) = self.parse_type() {
                    if self.eat_punct(")") {
                        let inner = self.parse_unary()?;
                        return Ok(Expr::Cast(ty, Box::new(inner)));
                    }
                }
            }
            self.pos = save;
        }
        self.parse_postfix()
    }

    fn parse_postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.parse_primary()?;
        loop {
            if self.eat_punct("->") {
                let f = self.ident()?;
                e = Expr::Field(Box::new(e), f);
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn parse_primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().cloned() {
            Some(Tok::Int(v)) => {
                self.pos += 1;
                Ok(Expr::Int(v))
            }
            Some(Tok::Ident(name)) => {
                self.pos += 1;
                if self.eat_punct("(") {
                    let mut args = Vec::new();
                    if !self.eat_punct(")") {
                        loop {
                            args.push(self.parse_expr()?);
                            if self.eat_punct(")") {
                                break;
                            }
                            self.expect_punct(",")?;
                        }
                    }
                    Ok(Expr::Call(name, args))
                } else {
                    Ok(Expr::Var(name))
                }
            }
            Some(Tok::Punct("(")) => {
                self.pos += 1;
                let e = self.parse_expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            _ => Err(self.err("expected expression")),
        }
    }
}

/// Parses a mini-C module.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first syntax error.
pub fn parse_module(src: &str) -> Result<Module, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        module: Module::default(),
    };
    p.parse_module()?;
    Ok(p.module)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_close_last() {
        let src = "
            struct LL { struct LL* next; int handle; };
            int close_last(const struct LL* list) {
                while (list->next != 0) { list = list->next; }
                return close(list->handle);
            }
        ";
        let m = parse_module(src).unwrap();
        assert_eq!(m.structs.len(), 1);
        assert_eq!(m.funcs.len(), 1);
        let f = &m.funcs[0];
        assert!(matches!(
            f.params[0].1,
            SrcType::Ptr { is_const: true, .. }
        ));
        assert_eq!(f.body.len(), 2);
    }

    #[test]
    fn parses_casts_and_malloc() {
        let src = "
            int main() {
                int* p = (int*) malloc(4);
                *p = 5;
                return *p;
            }
        ";
        let m = parse_module(src).unwrap();
        match &m.funcs[0].body[0] {
            Stmt::Decl(_, ty, Expr::Cast(cty, _)) => {
                assert_eq!(ty, cty);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_fastcall_and_ops() {
        let src = "
            fastcall int mix(int a, int b) {
                int c = a + b * 2;
                if (c > 0) { return c; } else { return 0 - c; }
            }
        ";
        let m = parse_module(src).unwrap();
        assert!(m.funcs[0].fastcall);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_module("int f( {").is_err());
        assert!(parse_module("banana").is_err());
    }

    #[test]
    fn forward_struct_references() {
        let src = "
            struct A { struct B* b; };
            struct B { int x; };
            int g(struct A* a) { return a->b->x; }
        ";
        let m = parse_module(src).unwrap();
        assert_eq!(m.structs.len(), 2);
    }
}
