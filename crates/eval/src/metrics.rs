//! The evaluation metrics of §6.5 (defined by Lee et al. for TIE, plus
//! SecondWrite's multi-level pointer accuracy and the §6.4 const recall).

use retypd_baselines::{InfTy, InferredProgram};
use retypd_core::{Lattice, LatticeElem, Loc};
use retypd_minic::ast::{Module, SrcType};
use retypd_minic::truth::{GroundTruth, ParamLoc};

/// Maximum lattice distance (TIE caps distances at 4).
pub const MAX_DIST: f64 = 4.0;

/// Aggregated metrics for one tool over one program.
#[derive(Clone, Copy, Debug, Default)]
pub struct ToolMetrics {
    /// Mean distance from displayed type to ground truth (lower = better).
    pub distance: f64,
    /// Mean interval size (upper-vs-lower bound distance).
    pub interval: f64,
    /// Fraction of slots whose interval over-approximates the truth.
    pub conservativeness: f64,
    /// Mean fraction of pointer levels recovered.
    pub pointer_accuracy: f64,
    /// Fraction of source `const` pointer params recovered as const.
    pub const_recall: f64,
    /// Number of scored type slots.
    pub slots: usize,
    /// Number of scored pointer slots.
    pub pointer_slots: usize,
    /// Number of ground-truth const params.
    pub const_truths: usize,
}

/// Converts a source type into the scoring tree.
pub fn truth_to_infty(t: &SrcType, module: &Module, depth: u32) -> InfTy {
    if depth > 4 {
        return InfTy::Unknown;
    }
    match t {
        SrcType::Void => InfTy::Unknown,
        SrcType::Int => scalar("int"),
        SrcType::UInt => scalar("uint"),
        SrcType::Char => scalar("char"),
        SrcType::Float => scalar("float"),
        SrcType::Tagged(tag, _) => scalar(tag),
        SrcType::Ptr { pointee, .. } => {
            InfTy::Ptr(Box::new(truth_to_infty(pointee, module, depth + 1)))
        }
        SrcType::Struct(i) => {
            let s = &module.structs[*i];
            let mut fields = Vec::new();
            let mut off = 0i32;
            for (_, fty) in &s.fields {
                fields.push((off, truth_to_infty(fty, module, depth + 1)));
                off += fty.size(module).max(4) as i32;
            }
            InfTy::Struct(fields)
        }
    }
}

fn scalar(name: &str) -> InfTy {
    InfTy::Scalar {
        mark: name.to_owned(),
        lower: name.to_owned(),
        upper: name.to_owned(),
    }
}

fn elem(lattice: &Lattice, name: &str) -> LatticeElem {
    lattice.element(name).unwrap_or_else(|| lattice.top())
}

/// TIE-style lattice distance between two named elements, capped.
fn scalar_distance(lattice: &Lattice, a: &str, b: &str) -> f64 {
    let (ea, eb) = (elem(lattice, a), elem(lattice, b));
    match lattice.chain_distance(ea, eb) {
        Some(d) => (d as f64).min(MAX_DIST),
        None => MAX_DIST,
    }
}

/// Distance between an inferred type and the truth (0 = exact).
pub fn distance(lattice: &Lattice, inferred: &InfTy, truth: &InfTy) -> f64 {
    match (inferred, truth) {
        (InfTy::Unknown, InfTy::Unknown) => 0.0,
        (InfTy::Unknown, InfTy::Scalar { mark, .. }) => scalar_distance(lattice, "⊤", mark),
        (InfTy::Unknown, InfTy::Ptr(_)) | (InfTy::Unknown, InfTy::Struct(_)) => MAX_DIST / 2.0,
        (InfTy::Scalar { mark: a, .. }, InfTy::Scalar { mark: b, .. }) => {
            scalar_distance(lattice, a, b)
        }
        (InfTy::Ptr(a), InfTy::Ptr(b)) => 0.5 * distance(lattice, a, b),
        (InfTy::Struct(fa), InfTy::Struct(fb)) => {
            let mut total = 0.0;
            let mut n = 0usize;
            for (off, tb) in fb {
                n += 1;
                match fa.iter().find(|(o, _)| o == off) {
                    Some((_, ta)) => total += distance(lattice, ta, tb),
                    None => total += MAX_DIST,
                }
            }
            // Spurious inferred fields cost half each.
            for (off, _) in fa {
                if !fb.iter().any(|(o, _)| o == off) {
                    total += MAX_DIST / 2.0;
                    n += 1;
                }
            }
            if n == 0 {
                0.0
            } else {
                (total / n as f64).min(MAX_DIST)
            }
        }
        // A single-field struct at offset 0 is compatible with a scalar
        // view of the same cell (physical subtyping, §2.4).
        (InfTy::Struct(fs), t) if fs.len() == 1 && fs[0].0 == 0 => {
            0.5 + distance(lattice, &fs[0].1, t).min(MAX_DIST - 0.5)
        }
        (t, InfTy::Struct(fs)) if fs.len() == 1 && fs[0].0 == 0 => {
            0.5 + distance(lattice, t, &fs[0].1).min(MAX_DIST - 0.5)
        }
        _ => MAX_DIST,
    }
}

/// True if the inferred interval over-approximates the truth.
pub fn conservative(lattice: &Lattice, inferred: &InfTy, truth: &InfTy) -> bool {
    match (inferred, truth) {
        (InfTy::Unknown, _) => true,
        (InfTy::Scalar { lower, upper, .. }, InfTy::Scalar { mark, .. }) => {
            let t = elem(lattice, mark);
            lattice.leq(elem(lattice, lower), t) && lattice.leq(t, elem(lattice, upper))
        }
        (InfTy::Ptr(a), InfTy::Ptr(b)) => conservative(lattice, a, b),
        (InfTy::Struct(fa), InfTy::Struct(fb)) => fa.iter().all(|(off, ta)| {
            match fb.iter().find(|(o, _)| o == off) {
                Some((_, tb)) => conservative(lattice, ta, tb),
                None => false, // claimed structure that is not there
            }
        }),
        (InfTy::Struct(fs), t) if fs.len() == 1 && fs[0].0 == 0 => {
            conservative(lattice, &fs[0].1, t)
        }
        (t, InfTy::Struct(fs)) if fs.len() == 1 && fs[0].0 == 0 => {
            conservative(lattice, t, &fs[0].1)
        }
        _ => false,
    }
}

/// Interval size of an inferred type.
pub fn interval_size(lattice: &Lattice, inferred: &InfTy) -> f64 {
    match inferred {
        InfTy::Unknown => MAX_DIST,
        InfTy::Scalar { lower, upper, .. } => scalar_distance(lattice, lower, upper),
        InfTy::Ptr(p) => 0.5 * interval_size(lattice, p),
        InfTy::Struct(fs) => {
            if fs.is_empty() {
                0.0
            } else {
                fs.iter().map(|(_, t)| interval_size(lattice, t)).sum::<f64>() / fs.len() as f64
            }
        }
    }
}

/// Matched pointer levels / truth pointer levels.
pub fn pointer_accuracy(inferred: &InfTy, truth: &InfTy) -> Option<f64> {
    let truth_depth = truth.pointer_depth();
    if truth_depth == 0 {
        return None;
    }
    let mut matched = 0u32;
    let (mut a, mut b) = (inferred, truth);
    loop {
        match (a, b) {
            (InfTy::Ptr(pa), InfTy::Ptr(pb)) => {
                matched += 1;
                a = pa;
                b = pb;
            }
            // Struct pointees still count as a matched level target.
            (InfTy::Struct(fs), InfTy::Ptr(_)) | (InfTy::Struct(fs), InfTy::Struct(_))
                if fs.len() == 1 && fs[0].0 == 0 =>
            {
                a = &fs[0].1;
            }
            (_, InfTy::Struct(fs)) if fs.len() == 1 && fs[0].0 == 0 => {
                b = &fs[0].1;
            }
            _ => break,
        }
    }
    Some(matched.min(truth_depth) as f64 / truth_depth as f64)
}

/// Scores one tool's inferred program against ground truth.
pub fn score(lattice: &Lattice, inferred: &InferredProgram, truth: &GroundTruth) -> ToolMetrics {
    let mut m = ToolMetrics::default();
    let mut dist_sum = 0.0;
    let mut int_sum = 0.0;
    let mut cons = 0usize;
    let mut ptr_sum = 0.0;
    let mut const_found = 0usize;
    for ft in &truth.funcs {
        let inf = inferred.get(&retypd_core::Symbol::intern(&ft.name));
        // Parameters.
        for p in &ft.params {
            let loc = match &p.loc {
                ParamLoc::Stack(k) => Loc::Stack(*k),
                ParamLoc::Reg(r) => Loc::reg(r),
            };
            let t = truth_to_infty(&p.ty, &truth.module, 0);
            let i = inf
                .and_then(|f| f.params.get(&loc))
                .cloned()
                .unwrap_or(InfTy::Unknown);
            m.slots += 1;
            dist_sum += distance(lattice, &i, &t);
            int_sum += interval_size(lattice, &i);
            if conservative(lattice, &i, &t) {
                cons += 1;
            }
            if let Some(pa) = pointer_accuracy(&i, &t) {
                m.pointer_slots += 1;
                ptr_sum += pa;
            }
            if matches!(p.ty.untagged(), SrcType::Ptr { is_const: true, .. }) {
                m.const_truths += 1;
                if inf
                    .and_then(|f| f.const_params.get(&loc))
                    .copied()
                    .unwrap_or(false)
                {
                    const_found += 1;
                }
            }
        }
        // Return slot.
        if let Some(rt) = &ft.ret {
            let t = truth_to_infty(rt, &truth.module, 0);
            let i = inf
                .and_then(|f| f.ret.clone())
                .unwrap_or(InfTy::Unknown);
            m.slots += 1;
            dist_sum += distance(lattice, &i, &t);
            int_sum += interval_size(lattice, &i);
            if conservative(lattice, &i, &t) {
                cons += 1;
            }
            if let Some(pa) = pointer_accuracy(&i, &t) {
                m.pointer_slots += 1;
                ptr_sum += pa;
            }
        }
    }
    if m.slots > 0 {
        m.distance = dist_sum / m.slots as f64;
        m.interval = int_sum / m.slots as f64;
        m.conservativeness = cons as f64 / m.slots as f64;
    }
    if m.pointer_slots > 0 {
        m.pointer_accuracy = ptr_sum / m.pointer_slots as f64;
    }
    if m.const_truths > 0 {
        m.const_recall = const_found as f64 / m.const_truths as f64;
    } else {
        m.const_recall = 1.0;
    }
    m
}

/// Averages metrics (for cluster folding, Figure 10).
pub fn average(items: &[ToolMetrics]) -> ToolMetrics {
    let n = items.len().max(1) as f64;
    let mut out = ToolMetrics::default();
    for m in items {
        out.distance += m.distance / n;
        out.interval += m.interval / n;
        out.conservativeness += m.conservativeness / n;
        out.pointer_accuracy += m.pointer_accuracy / n;
        out.const_recall += m.const_recall / n;
        out.slots += m.slots;
        out.pointer_slots += m.pointer_slots;
        out.const_truths += m.const_truths;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_match_has_zero_distance() {
        let lattice = Lattice::c_types();
        let t = scalar("int");
        assert_eq!(distance(&lattice, &t, &t), 0.0);
        assert!(conservative(&lattice, &t, &t));
        assert_eq!(interval_size(&lattice, &t), 0.0);
    }

    #[test]
    fn pointer_distance_halves() {
        let lattice = Lattice::c_types();
        let a = InfTy::Ptr(Box::new(scalar("int")));
        let b = InfTy::Ptr(Box::new(scalar("uint")));
        let d_scalar = distance(&lattice, &scalar("int"), &scalar("uint"));
        assert!(d_scalar > 0.0);
        assert_eq!(distance(&lattice, &a, &b), 0.5 * d_scalar);
    }

    #[test]
    fn conservativeness_checks_interval() {
        let lattice = Lattice::c_types();
        let truth = scalar("#FileDescriptor");
        let good = InfTy::Scalar {
            mark: "int".into(),
            lower: "⊥".into(),
            upper: "int".into(),
        };
        let bad = InfTy::Scalar {
            mark: "float".into(),
            lower: "float".into(),
            upper: "float".into(),
        };
        assert!(conservative(&lattice, &good, &truth));
        assert!(!conservative(&lattice, &bad, &truth));
        assert!(conservative(&lattice, &InfTy::Unknown, &truth));
    }

    #[test]
    fn pointer_accuracy_counts_levels() {
        let pp_int = InfTy::Ptr(Box::new(InfTy::Ptr(Box::new(scalar("char")))));
        let p_int = InfTy::Ptr(Box::new(scalar("char")));
        assert_eq!(pointer_accuracy(&pp_int, &pp_int), Some(1.0));
        assert_eq!(pointer_accuracy(&p_int, &pp_int), Some(0.5));
        assert_eq!(pointer_accuracy(&InfTy::Unknown, &pp_int), Some(0.0));
        assert_eq!(pointer_accuracy(&p_int, &scalar("int")), None);
    }
}
