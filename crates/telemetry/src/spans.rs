//! Structured tracing spans: per-thread ring buffers of
//! `{trace_id, span, start_ns, dur_ns}` events behind RAII guards.
//!
//! The subscriber is **off by default**. When off, [`span`] costs one relaxed
//! atomic load and its guard's `Drop` does nothing — instrumentation can stay
//! in release binaries with no measurable cost (the pipeline bench pins
//! this). When on, finishing a span writes one fixed-size event into a
//! preallocated per-thread ring buffer: no locks shared between threads on
//! the hot path, no allocation after a thread's first span.
//!
//! Events carry the *current trace id*, a thread-local value established with
//! [`set_current_trace`] (serve derives it from the wire `trace_id` envelope
//! field; the driver's scheduler forwards it into worker threads), so one
//! request's spans can be picked back out of a multi-tenant stream.
//!
//! [`drain_spans`] collects every thread's events (oldest dropped on ring
//! overflow) and [`chrome_trace_json`] renders them as Chrome-trace JSONL
//! (`about://tracing`, Perfetto, speedscope all open it).

use loom::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use loom::sync::{Arc, Mutex, OnceLock};
use std::cell::{Cell, RefCell};
use std::time::Instant;

/// Per-thread ring capacity, in events. A solve emits a handful of spans per
/// SCC; 16Ki events absorb the largest bench corpus with room to spare.
const RING_CAPACITY: usize = 16 * 1024;

static SPANS_ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);

/// Process-wide monotonic clock origin, fixed on first use so event
/// timestamps from different threads share one timeline.
fn epoch() -> &'static Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process-wide telemetry epoch.
#[inline]
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// Turn the span subscriber on or off. Off is the default; while off, span
/// guards are no-ops.
pub fn set_spans_enabled(enabled: bool) {
    // Make sure the epoch predates every event so timestamps never underflow.
    let _ = epoch();
    SPANS_ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether the span subscriber is currently on.
#[inline]
pub fn spans_enabled() -> bool {
    SPANS_ENABLED.load(Ordering::Relaxed)
}

/// One finished span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Trace this span belongs to (0 = untraced).
    pub trace_id: u64,
    /// Static span name, e.g. `"core.saturate"`.
    pub name: &'static str,
    /// Small dense id of the recording thread.
    pub thread: u64,
    /// Start, nanoseconds since the telemetry epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

struct Ring {
    /// Dense id used as the Chrome-trace `tid`.
    thread: u64,
    buf: Vec<SpanEvent>,
    /// Next write position; wraps at capacity.
    next: usize,
    /// Total events ever written (so drain knows how much wrapped).
    written: u64,
}

impl Ring {
    fn push(&mut self, ev: SpanEvent) {
        if self.buf.len() < RING_CAPACITY {
            self.buf.push(ev);
        } else {
            self.buf[self.next] = ev;
        }
        self.next = (self.next + 1) % RING_CAPACITY;
        self.written += 1;
    }

    fn drain(&mut self) -> Vec<SpanEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        if self.buf.len() == RING_CAPACITY {
            // Oldest-first: the slot after `next` is the oldest surviving.
            out.extend_from_slice(&self.buf[self.next..]);
            out.extend_from_slice(&self.buf[..self.next]);
        } else {
            out.extend_from_slice(&self.buf);
        }
        self.buf.clear();
        self.next = 0;
        out
    }
}

fn ring_registry() -> &'static Mutex<Vec<Arc<Mutex<Ring>>>> {
    static RINGS: OnceLock<Mutex<Vec<Arc<Mutex<Ring>>>>> = OnceLock::new();
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    // The thread's own ring. The inner mutex is uncontended except during a
    // drain; `Arc` keeps the ring alive in the registry after thread exit so
    // short-lived worker threads don't lose their events.
    static LOCAL_RING: RefCell<Option<Arc<Mutex<Ring>>>> = const { RefCell::new(None) };
    static CURRENT_TRACE: Cell<u64> = const { Cell::new(0) };
}

fn with_local_ring(f: impl FnOnce(&mut Ring)) {
    LOCAL_RING.with(|slot| {
        let mut slot = slot.borrow_mut();
        let ring = slot.get_or_insert_with(|| {
            let ring = Arc::new(Mutex::new(Ring {
                thread: NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed),
                buf: Vec::with_capacity(RING_CAPACITY.min(1024)),
                next: 0,
                written: 0,
            }));
            ring_registry().lock().unwrap().push(Arc::clone(&ring));
            ring
        });
        f(&mut ring.lock().unwrap());
    });
}

/// The current thread's trace id (0 = untraced).
#[inline]
pub fn current_trace() -> u64 {
    CURRENT_TRACE.with(|c| c.get())
}

/// Establish `trace_id` as the current trace for this thread until the
/// returned guard drops (the previous value is restored — nesting works).
#[must_use = "the trace is only current while the guard lives"]
pub fn set_current_trace(trace_id: u64) -> TraceGuard {
    let prev = CURRENT_TRACE.with(|c| c.replace(trace_id));
    TraceGuard { prev }
}

/// Restores the previously current trace id on drop.
#[derive(Debug)]
pub struct TraceGuard {
    prev: u64,
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        CURRENT_TRACE.with(|c| c.set(self.prev));
    }
}

/// FNV-1a hash of a wire trace-id string, for stamping span events. Stable
/// across processes so offline tooling can re-derive it from the string.
pub fn trace_id_hash(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    // Reserve 0 for "untraced".
    if h == 0 {
        1
    } else {
        h
    }
}

/// Start a span. Records on guard drop if the subscriber is enabled at both
/// start and finish; otherwise a no-op.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    let start_ns = if spans_enabled() { now_ns() } else { u64::MAX };
    SpanGuard { name, start_ns }
}

/// RAII span handle from [`span`]; the span finishes when this drops.
#[derive(Debug)]
#[must_use = "a span measures until its guard drops"]
pub struct SpanGuard {
    name: &'static str,
    /// `u64::MAX` marks a disarmed (subscriber-off) guard.
    start_ns: u64,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.start_ns == u64::MAX || !spans_enabled() {
            return;
        }
        let end = now_ns();
        let ev = SpanEvent {
            trace_id: current_trace(),
            name: self.name,
            thread: 0, // stamped by the ring below
            start_ns: self.start_ns,
            dur_ns: end.saturating_sub(self.start_ns),
        };
        with_local_ring(|ring| {
            let mut ev = ev;
            ev.thread = ring.thread;
            ring.push(ev);
        });
    }
}

/// Collect and clear every thread's buffered events, oldest-first per thread,
/// globally sorted by `(start_ns, thread)`. Also returns the number of events
/// lost to ring overflow since the last drain.
pub fn drain_spans() -> (Vec<SpanEvent>, u64) {
    let rings = ring_registry().lock().unwrap();
    let mut events = Vec::new();
    let mut dropped = 0u64;
    for ring in rings.iter() {
        let mut ring = ring.lock().unwrap();
        let kept = ring.drain();
        dropped += ring.written - kept.len() as u64;
        ring.written = 0;
        events.extend(kept);
    }
    events.sort_by_key(|e| (e.start_ns, e.thread));
    (events, dropped)
}

/// Render events as Chrome-trace JSONL: one complete-duration (`"ph":"X"`)
/// object per line, timestamps in microseconds as the format requires,
/// `trace_id` carried in `args`. An empty trailing newline terminates output.
pub fn chrome_trace_json(events: &[SpanEvent]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{}.{:03},\"dur\":{}.{:03},\"args\":{{\"trace_id\":\"{:016x}\"}}}}\n",
            e.name,
            e.thread,
            e.start_ns / 1_000,
            e.start_ns % 1_000,
            e.dur_ns / 1_000,
            e.dur_ns % 1_000,
            e.trace_id,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // Span tests share process-global state (the enable flag and ring
    // registry), so they run under one lock to stay order-independent.
    fn span_test_lock() -> loom::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap()
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _l = span_test_lock();
        set_spans_enabled(false);
        drop(drain_spans());
        {
            let _g = span("noop");
        }
        let (events, dropped) = drain_spans();
        assert!(events.is_empty());
        assert_eq!(dropped, 0);
    }

    #[test]
    fn spans_carry_trace_and_nest() {
        let _l = span_test_lock();
        set_spans_enabled(true);
        drop(drain_spans());
        {
            let _t = set_current_trace(7);
            let _outer = span("outer");
            {
                let _t2 = set_current_trace(9);
                let _inner = span("inner");
            }
            assert_eq!(current_trace(), 7);
        }
        assert_eq!(current_trace(), 0);
        set_spans_enabled(false);
        let (events, _) = drain_spans();
        let inner = events.iter().find(|e| e.name == "inner").expect("inner recorded");
        let outer = events.iter().find(|e| e.name == "outer").expect("outer recorded");
        assert_eq!(inner.trace_id, 9);
        assert_eq!(outer.trace_id, 7);
        // Inner finished first but started later; the outer span must
        // enclose it on the shared timeline.
        assert!(outer.start_ns <= inner.start_ns);
        assert!(outer.start_ns + outer.dur_ns >= inner.start_ns + inner.dur_ns);
    }

    #[test]
    fn cross_thread_events_share_the_timeline() {
        let _l = span_test_lock();
        set_spans_enabled(true);
        drop(drain_spans());
        // retypd-lint: allow(no-raw-thread) scoped spawns are not modeled
        std::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| {
                    let _t = set_current_trace(5);
                    let _g = span("worker");
                });
            }
        });
        set_spans_enabled(false);
        let (events, _) = drain_spans();
        let workers: Vec<_> = events.iter().filter(|e| e.name == "worker").collect();
        assert_eq!(workers.len(), 3);
        // Distinct ring/thread ids, same trace.
        let mut tids: Vec<u64> = workers.iter().map(|e| e.thread).collect();
        tids.sort_unstable();
        tids.dedup();
        assert_eq!(tids.len(), 3);
        assert!(workers.iter().all(|e| e.trace_id == 5));
        // Drained means drained.
        assert!(drain_spans().0.is_empty());
    }

    #[test]
    fn chrome_trace_lines_parse_shape() {
        let events = vec![SpanEvent {
            trace_id: 0xabc,
            name: "core.saturate",
            thread: 2,
            start_ns: 1_234_567,
            dur_ns: 89_012,
        }];
        let text = chrome_trace_json(&events);
        let line = text.lines().next().unwrap();
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"name\":\"core.saturate\""));
        assert!(line.contains("\"ph\":\"X\""));
        assert!(line.contains("\"tid\":2"));
        assert!(line.contains("\"ts\":1234.567"));
        assert!(line.contains("\"dur\":89.012"));
        assert!(line.contains("\"trace_id\":\"0000000000000abc\""));
    }

    #[test]
    fn trace_id_hash_is_stable_and_nonzero() {
        assert_eq!(trace_id_hash("req-1"), trace_id_hash("req-1"));
        assert_ne!(trace_id_hash("req-1"), trace_id_hash("req-2"));
        assert_ne!(trace_id_hash(""), 0);
    }

    #[test]
    fn ring_overflow_drops_oldest_and_counts() {
        let mut ring = Ring { thread: 1, buf: Vec::new(), next: 0, written: 0 };
        for i in 0..(RING_CAPACITY as u64 + 10) {
            ring.push(SpanEvent {
                trace_id: 0,
                name: "x",
                thread: 1,
                start_ns: i,
                dur_ns: 0,
            });
        }
        let kept = ring.drain();
        assert_eq!(kept.len(), RING_CAPACITY);
        // Oldest-first and the 10 oldest are gone.
        assert_eq!(kept[0].start_ns, 10);
        assert_eq!(kept.last().unwrap().start_ns, RING_CAPACITY as u64 + 9);
        assert_eq!(ring.written - kept.len() as u64, 10);
    }
}
