//! The customizable auxiliary lattice Λ of atomic types and semantic tags
//! (§2.8, §3.5, Appendix E).
//!
//! Sketch nodes are marked with elements of a finite lattice Λ. The lattice
//! is uninterpreted by the core solver: it only needs `≤`, joins and meets.
//! Users extend it with ad-hoc typedef hierarchies and semantic classes such
//! as `#FileDescriptor` (§2.8: Windows handle hierarchies, `#signal-number`
//! seeds, …).
//!
//! ```
//! use retypd_core::Lattice;
//!
//! let lat = Lattice::c_types();
//! let int32 = lat.element("int32").unwrap();
//! let fd = lat.element("#FileDescriptor").unwrap();
//! assert!(lat.leq(fd, int32));
//! assert_eq!(lat.join(fd, int32), int32);
//! ```

use std::collections::HashMap;
use std::fmt;
use std::str::FromStr;

use crate::intern::Symbol;

/// Characters that cannot appear in a lattice element or descriptor name:
/// they delimit the canonical text form of [`LatticeDescriptor`].
const RESERVED: &[char] = &['{', '}', ';', ',', '<', '='];

fn validate_name(kind: &str, name: &str) -> Result<(), LatticeError> {
    if name.is_empty()
        || name.chars().any(|c| c.is_whitespace() || RESERVED.contains(&c))
    {
        return Err(LatticeError::InvalidName(format!("{kind} {name:?}")));
    }
    Ok(())
}

/// An element of a [`Lattice`], as a dense index.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LatticeElem(pub(crate) u16);

impl LatticeElem {
    /// The element's dense index within its lattice. Indices follow the
    /// descriptor's element order, so for a fixed descriptor they are
    /// stable across processes — which is what lets fingerprints hash
    /// them directly instead of rendering names.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Errors produced while building or querying a lattice.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LatticeError {
    /// An edge mentioned an element that was never added.
    UnknownElement(String),
    /// The `≤` relation has a nontrivial cycle, so it is not a partial order.
    NotAntisymmetric(String, String),
    /// Two elements have no unique least upper bound.
    NoJoin {
        /// First element.
        a: String,
        /// Second element.
        b: String,
        /// The minimal upper bounds found (more than one, or none).
        candidates: Vec<String>,
    },
    /// Two elements have no unique greatest lower bound.
    NoMeet {
        /// First element.
        a: String,
        /// Second element.
        b: String,
        /// The maximal lower bounds found (more than one, or none).
        candidates: Vec<String>,
    },
    /// A name was added twice.
    Duplicate(String),
    /// A name contains whitespace or a character reserved by the
    /// descriptor text form (`{ } ; , < =`), or is empty.
    InvalidName(String),
    /// A [`LatticeDescriptor`] text form could not be parsed.
    Parse(String),
}

impl fmt::Display for LatticeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LatticeError::UnknownElement(n) => write!(f, "unknown lattice element {n:?}"),
            LatticeError::NotAntisymmetric(a, b) => {
                write!(f, "elements {a:?} and {b:?} are in a ≤-cycle")
            }
            LatticeError::NoJoin { a, b, candidates } => write!(
                f,
                "no unique join of {a:?} and {b:?}; minimal upper bounds: {candidates:?}"
            ),
            LatticeError::NoMeet { a, b, candidates } => write!(
                f,
                "no unique meet of {a:?} and {b:?}; maximal lower bounds: {candidates:?}"
            ),
            LatticeError::Duplicate(n) => write!(f, "duplicate lattice element {n:?}"),
            LatticeError::InvalidName(n) => write!(
                f,
                "invalid lattice name {n}: names are non-empty and contain no \
                 whitespace or reserved characters ({{ }} ; , < =)"
            ),
            LatticeError::Parse(m) => write!(f, "bad lattice descriptor: {m}"),
        }
    }
}

impl std::error::Error for LatticeError {}

/// A lattice as *data*: a name, an ordered element list, and `lower ≤ upper`
/// edges. This is the serializable request-side description of Λ — the wire
/// protocol carries one of these (as canonical text), the driver builds and
/// memoizes a [`Lattice`] from it, and cache keys incorporate its
/// fingerprint so two lattices never share scheme-cache entries.
///
/// ## Canonical text form
///
/// ```text
/// lattice <name> { <elem> <elem> … ; <lo> <= <hi>, <lo> <= <hi>, … }
/// ```
///
/// `Display` emits this form and [`LatticeDescriptor::from_str`] parses it
/// back; the round trip is the identity on the descriptor (element and edge
/// order are preserved — element order determines the built lattice's dense
/// indices, so a descriptor round trip rebuilds an index-identical lattice).
/// Names may not be empty or contain whitespace or `{ } ; , < =`.
///
/// ## Fingerprint
///
/// [`LatticeDescriptor::fingerprint`] is a stable FNV-1a 64-bit hash of the
/// element list and edge list (the name is deliberately excluded, like
/// module names in job fingerprints: a renamed copy of the same lattice is
/// the same lattice). Descriptors emitted by [`Lattice::descriptor`] are
/// *canonical* — elements in index order, edges reduced to the covering
/// relation and sorted — so every description that builds an
/// order-identical lattice converges to one fingerprint:
/// `d.build()?.fingerprint()` is the authoritative cache-key identity.
///
/// ```
/// use retypd_core::{Lattice, LatticeDescriptor};
///
/// let d = Lattice::c_types().descriptor().clone();
/// let back: LatticeDescriptor = d.to_string().parse().unwrap();
/// assert_eq!(back, d);
/// assert_eq!(back.build().unwrap().fingerprint(), Lattice::c_types().fingerprint());
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LatticeDescriptor {
    name: String,
    elements: Vec<String>,
    edges: Vec<(String, String)>,
}

impl LatticeDescriptor {
    /// Builds a validated descriptor.
    ///
    /// # Errors
    ///
    /// Rejects invalid or duplicate names, an empty element list, and edges
    /// mentioning undeclared elements.
    pub fn new(
        name: impl Into<String>,
        elements: Vec<String>,
        edges: Vec<(String, String)>,
    ) -> Result<LatticeDescriptor, LatticeError> {
        let name = name.into();
        validate_name("descriptor name", &name)?;
        if elements.is_empty() {
            return Err(LatticeError::Parse("a lattice needs at least one element".into()));
        }
        let mut seen = std::collections::HashSet::new();
        for e in &elements {
            validate_name("element", e)?;
            if !seen.insert(e.as_str()) {
                return Err(LatticeError::Duplicate(e.clone()));
            }
        }
        for (lo, hi) in &edges {
            for side in [lo, hi] {
                if !seen.contains(side.as_str()) {
                    return Err(LatticeError::UnknownElement(side.clone()));
                }
            }
        }
        Ok(LatticeDescriptor {
            name,
            elements,
            edges,
        })
    }

    /// The descriptor's name (documentation only; excluded from the
    /// fingerprint).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Elements in declaration order (the built lattice's index order).
    pub fn elements(&self) -> &[String] {
        &self.elements
    }

    /// `lower ≤ upper` edges in declaration order.
    pub fn edges(&self) -> &[(String, String)] {
        &self.edges
    }

    /// Stable FNV-64 content fingerprint over elements and edges, in order
    /// (name excluded). Stable across runs, processes, and platforms.
    pub fn fingerprint(&self) -> u64 {
        let mut h = DescriptorFnv::new();
        h.write_u64(self.elements.len() as u64);
        for e in &self.elements {
            h.write_str(e);
        }
        h.write_u64(self.edges.len() as u64);
        for (lo, hi) in &self.edges {
            h.write_str(lo);
            h.write_str(hi);
        }
        h.finish()
    }

    /// A builder pre-populated with this descriptor's elements and edges.
    pub fn to_builder(&self) -> LatticeBuilder {
        let mut b = LatticeBuilder::named(&self.name);
        for e in &self.elements {
            b.add(e).expect("descriptor elements are distinct");
        }
        for (lo, hi) in &self.edges {
            b.le(lo, hi).expect("descriptor edges reference declared elements");
        }
        b
    }

    /// Builds (and validates) the described lattice.
    ///
    /// # Errors
    ///
    /// Returns the usual [`LatticeBuilder::build`] errors when the
    /// described order is not a lattice.
    pub fn build(&self) -> Result<Lattice, LatticeError> {
        self.to_builder().build()
    }

    /// The descriptor of the built-in C-types lattice
    /// ([`Lattice::c_types`]).
    pub fn c_types() -> LatticeDescriptor {
        Lattice::c_types().descriptor().clone()
    }
}

impl fmt::Display for LatticeDescriptor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lattice {} {{ ", self.name)?;
        for e in &self.elements {
            write!(f, "{e} ")?;
        }
        write!(f, ";")?;
        for (i, (lo, hi)) in self.edges.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            write!(f, "{sep} {lo} <= {hi}")?;
        }
        write!(f, " }}")
    }
}

impl FromStr for LatticeDescriptor {
    type Err = LatticeError;

    fn from_str(s: &str) -> Result<LatticeDescriptor, LatticeError> {
        let bad = |m: &str| LatticeError::Parse(m.to_owned());
        let s = s.trim();
        let rest = s
            .strip_prefix("lattice")
            .ok_or_else(|| bad("expected leading `lattice` keyword"))?;
        let open = rest.find('{').ok_or_else(|| bad("expected `{`"))?;
        let name = rest[..open].trim().to_owned();
        let body = rest[open + 1..]
            .strip_suffix('}')
            .ok_or_else(|| bad("expected closing `}`"))?;
        let (elems_part, edges_part) = body
            .split_once(';')
            .ok_or_else(|| bad("expected `;` between elements and edges"))?;
        if edges_part.contains(';') {
            return Err(bad("more than one `;`"));
        }
        let elements: Vec<String> =
            elems_part.split_whitespace().map(str::to_owned).collect();
        let mut edges = Vec::new();
        for chunk in edges_part.split(',') {
            let chunk = chunk.trim();
            if chunk.is_empty() {
                continue;
            }
            let (lo, hi) = chunk
                .split_once("<=")
                .ok_or_else(|| bad("edges have the form `lower <= upper`"))?;
            edges.push((lo.trim().to_owned(), hi.trim().to_owned()));
        }
        LatticeDescriptor::new(name, elements, edges)
    }
}

/// FNV-1a 64 for descriptor fingerprints (the driver has its own copy for
/// job fingerprints; both are the textbook constants, stable everywhere).
struct DescriptorFnv(u64);

impl DescriptorFnv {
    fn new() -> DescriptorFnv {
        let mut h = DescriptorFnv(0xcbf2_9ce4_8422_2325);
        h.write("lattice-descriptor".as_bytes());
        h
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn write_u64(&mut self, x: u64) {
        self.write(&x.to_le_bytes());
    }

    fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Incrementally builds a [`Lattice`] from elements and `≤` edges.
///
/// The builder validates on [`LatticeBuilder::build`] that the resulting
/// structure really is a lattice (antisymmetric order with unique binary
/// joins and meets); ill-formed hierarchies are rejected with a useful
/// error rather than silently mis-solving constraints later.
#[derive(Clone, Default, Debug)]
pub struct LatticeBuilder {
    /// Descriptor name of the built lattice; empty means `"custom"`.
    name: String,
    names: Vec<Symbol>,
    index: HashMap<Symbol, u16>,
    edges: Vec<(u16, u16)>, // (lower, upper)
}

impl LatticeBuilder {
    /// Creates an empty builder (descriptor name `"custom"`).
    pub fn new() -> LatticeBuilder {
        LatticeBuilder::default()
    }

    /// Creates an empty builder whose built lattice will carry `name` in
    /// its [`LatticeDescriptor`].
    pub fn named(name: impl Into<String>) -> LatticeBuilder {
        LatticeBuilder {
            name: name.into(),
            ..LatticeBuilder::default()
        }
    }

    /// Sets the descriptor name of the built lattice.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Adds an element; returns an error if the name already exists.
    pub fn add(&mut self, name: &str) -> Result<(), LatticeError> {
        let sym = Symbol::intern(name);
        if self.index.contains_key(&sym) {
            return Err(LatticeError::Duplicate(name.to_owned()));
        }
        let id = self.names.len() as u16;
        self.names.push(sym);
        self.index.insert(sym, id);
        Ok(())
    }

    /// Adds an element if not already present.
    pub fn ensure(&mut self, name: &str) {
        let _ = self.add(name);
    }

    /// Declares `lower ≤ upper`.
    ///
    /// # Errors
    ///
    /// Returns [`LatticeError::UnknownElement`] if either side was not added.
    pub fn le(&mut self, lower: &str, upper: &str) -> Result<(), LatticeError> {
        let l = self.lookup(lower)?;
        let u = self.lookup(upper)?;
        self.edges.push((l, u));
        Ok(())
    }

    /// Adds `child` as a new element below `parent` (a convenience for
    /// tree-shaped hierarchies).
    pub fn add_under(&mut self, child: &str, parent: &str) -> Result<(), LatticeError> {
        self.add(child)?;
        self.le(child, parent)
    }

    fn lookup(&self, name: &str) -> Result<u16, LatticeError> {
        self.index
            .get(&Symbol::intern(name))
            .copied()
            .ok_or_else(|| LatticeError::UnknownElement(name.to_owned()))
    }

    /// Validates the order and computes join/meet tables.
    ///
    /// # Errors
    ///
    /// Returns an error if the relation is not antisymmetric or some pair of
    /// elements lacks a unique join or meet. The conventional fix for the
    /// latter is to introduce an explicit common bound element.
    pub fn build(self) -> Result<Lattice, LatticeError> {
        let n = self.names.len();
        assert!(n > 0, "a lattice needs at least one element");
        assert!(n < u16::MAX as usize, "too many lattice elements");
        // Every built lattice is expressible as a descriptor (a lattice is
        // data now), so element names must fit the descriptor grammar.
        let descr_name = if self.name.is_empty() {
            "custom".to_owned()
        } else {
            self.name.clone()
        };
        validate_name("descriptor name", &descr_name)?;
        for s in &self.names {
            validate_name("element", s.as_str())?;
        }
        // Reflexive-transitive closure of ≤ via simple propagation.
        let mut leq = vec![false; n * n];
        for i in 0..n {
            leq[i * n + i] = true;
        }
        for &(l, u) in &self.edges {
            leq[l as usize * n + u as usize] = true;
        }
        // Floyd–Warshall style closure.
        for k in 0..n {
            for i in 0..n {
                if leq[i * n + k] {
                    for j in 0..n {
                        if leq[k * n + j] {
                            leq[i * n + j] = true;
                        }
                    }
                }
            }
        }
        // Antisymmetry.
        for i in 0..n {
            for j in (i + 1)..n {
                if leq[i * n + j] && leq[j * n + i] {
                    return Err(LatticeError::NotAntisymmetric(
                        self.names[i].as_str().to_owned(),
                        self.names[j].as_str().to_owned(),
                    ));
                }
            }
        }
        // Join and meet tables with uniqueness validation.
        let name_of = |i: u16| self.names[i as usize].as_str().to_owned();
        let mut join = vec![0u16; n * n];
        let mut meet = vec![0u16; n * n];
        for a in 0..n {
            for b in a..n {
                let uppers: Vec<u16> = (0..n as u16)
                    .filter(|&c| leq[a * n + c as usize] && leq[b * n + c as usize])
                    .collect();
                let minimal: Vec<u16> = uppers
                    .iter()
                    .copied()
                    .filter(|&c| {
                        uppers
                            .iter()
                            .all(|&d| d == c || !leq[d as usize * n + c as usize])
                    })
                    .collect();
                if minimal.len() != 1 {
                    return Err(LatticeError::NoJoin {
                        a: name_of(a as u16),
                        b: name_of(b as u16),
                        candidates: minimal.into_iter().map(name_of).collect(),
                    });
                }
                join[a * n + b] = minimal[0];
                join[b * n + a] = minimal[0];

                let lowers: Vec<u16> = (0..n as u16)
                    .filter(|&c| leq[c as usize * n + a] && leq[c as usize * n + b])
                    .collect();
                let maximal: Vec<u16> = lowers
                    .iter()
                    .copied()
                    .filter(|&c| {
                        lowers
                            .iter()
                            .all(|&d| d == c || !leq[c as usize * n + d as usize])
                    })
                    .collect();
                if maximal.len() != 1 {
                    return Err(LatticeError::NoMeet {
                        a: name_of(a as u16),
                        b: name_of(b as u16),
                        candidates: maximal.into_iter().map(name_of).collect(),
                    });
                }
                meet[a * n + b] = maximal[0];
                meet[b * n + a] = maximal[0];
            }
        }
        // Top and bottom: the unique maximum/minimum must exist because
        // join/meet of everything exists; fold to find them.
        let mut top = 0u16;
        let mut bottom = 0u16;
        for i in 0..n as u16 {
            top = join[top as usize * n + i as usize];
            bottom = meet[bottom as usize * n + i as usize];
        }
        // Canonical descriptor: elements in index order, edges reduced to
        // the covering relation (i ⋖ j: i < j with nothing strictly
        // between) in index order. Every builder that produces this order
        // — whatever redundant edges it declared — converges to the same
        // descriptor, and therefore the same fingerprint.
        let mut covers = Vec::new();
        for i in 0..n {
            for j in 0..n {
                if i != j
                    && leq[i * n + j]
                    && !(0..n).any(|k| {
                        k != i && k != j && leq[i * n + k] && leq[k * n + j]
                    })
                {
                    covers.push((
                        self.names[i].as_str().to_owned(),
                        self.names[j].as_str().to_owned(),
                    ));
                }
            }
        }
        let descriptor = LatticeDescriptor::new(
            descr_name,
            self.names.iter().map(|s| s.as_str().to_owned()).collect(),
            covers,
        )
        .expect("validated names form a well-formed descriptor");
        let fingerprint = descriptor.fingerprint();
        Ok(Lattice {
            descriptor,
            fingerprint,
            names: self.names,
            index: self.index,
            n,
            leq,
            join,
            meet,
            top: LatticeElem(top),
            bottom: LatticeElem(bottom),
        })
    }
}

/// A validated finite lattice of atomic types and semantic tags.
#[derive(Clone, Debug)]
pub struct Lattice {
    /// The canonical description this lattice was built to (elements in
    /// index order, covering-relation edges).
    descriptor: LatticeDescriptor,
    /// `descriptor.fingerprint()`, precomputed — the lattice's cache-key
    /// identity.
    fingerprint: u64,
    names: Vec<Symbol>,
    index: HashMap<Symbol, u16>,
    n: usize,
    leq: Vec<bool>,
    join: Vec<u16>,
    meet: Vec<u16>,
    top: LatticeElem,
    bottom: LatticeElem,
}

impl Lattice {
    /// The canonical [`LatticeDescriptor`] of this lattice: elements in
    /// index order, edges reduced to the covering relation. Rebuilding from
    /// it yields an index-identical lattice.
    pub fn descriptor(&self) -> &LatticeDescriptor {
        &self.descriptor
    }

    /// The stable content fingerprint of this lattice (its canonical
    /// descriptor's [`LatticeDescriptor::fingerprint`]). Any two lattices
    /// built to the same element order and partial order share it; the
    /// driver mixes it into every scheme-cache key so distinct lattices
    /// never share entries.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Looks up an element by name.
    pub fn element(&self, name: &str) -> Option<LatticeElem> {
        self.index.get(&Symbol::intern(name)).map(|&i| LatticeElem(i))
    }

    /// Looks up an element by interned symbol.
    pub fn element_sym(&self, sym: Symbol) -> Option<LatticeElem> {
        self.index.get(&sym).map(|&i| LatticeElem(i))
    }

    /// The element's name.
    pub fn name(&self, e: LatticeElem) -> &'static str {
        self.names[e.0 as usize].as_str()
    }

    /// `a ≤ b` in the lattice order.
    pub fn leq(&self, a: LatticeElem, b: LatticeElem) -> bool {
        self.leq[a.0 as usize * self.n + b.0 as usize]
    }

    /// Least upper bound.
    pub fn join(&self, a: LatticeElem, b: LatticeElem) -> LatticeElem {
        LatticeElem(self.join[a.0 as usize * self.n + b.0 as usize])
    }

    /// Greatest lower bound.
    pub fn meet(&self, a: LatticeElem, b: LatticeElem) -> LatticeElem {
        LatticeElem(self.meet[a.0 as usize * self.n + b.0 as usize])
    }

    /// The greatest element ⊤.
    pub fn top(&self) -> LatticeElem {
        self.top
    }

    /// The least element ⊥.
    pub fn bottom(&self) -> LatticeElem {
        self.bottom
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the lattice has exactly the trivial two elements; never true
    /// for the built-in lattices.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterates over all elements.
    pub fn elements(&self) -> impl Iterator<Item = LatticeElem> + '_ {
        (0..self.n as u16).map(LatticeElem)
    }

    /// The "distance" between two comparable elements: the length of the
    /// longest chain between them; used by the TIE-style evaluation metrics.
    /// Returns `None` for incomparable elements.
    pub fn chain_distance(&self, a: LatticeElem, b: LatticeElem) -> Option<u32> {
        let (lo, hi) = if self.leq(a, b) {
            (a, b)
        } else if self.leq(b, a) {
            (b, a)
        } else {
            return None;
        };
        // Longest chain from lo to hi by DFS over the interval [lo, hi].
        fn longest(lat: &Lattice, cur: LatticeElem, hi: LatticeElem) -> u32 {
            if cur == hi {
                return 0;
            }
            let mut best = 0;
            for nxt in lat.elements() {
                if nxt != cur && lat.leq(cur, nxt) && lat.leq(nxt, hi) {
                    // Only step to covers-ish elements: this DFS is exponential
                    // in pathological lattices but ours are small trees.
                    let d = longest(lat, nxt, hi);
                    best = best.max(d + 1);
                }
            }
            best
        }
        Some(longest(self, lo, hi))
    }

    /// The Figure 15 example lattice: `⊥ ⊑ url ⊑ str ⊑ ⊤`, `⊥ ⊑ num ⊑ ⊤`.
    pub fn paper_example() -> Lattice {
        let mut b = LatticeBuilder::named("paper");
        for e in ["⊤", "num", "str", "url", "⊥"] {
            b.add(e).expect("fresh element");
        }
        b.le("num", "⊤").expect("known");
        b.le("str", "⊤").expect("known");
        b.le("url", "str").expect("known");
        b.le("⊥", "num").expect("known");
        b.le("⊥", "url").expect("known");
        b.build().expect("the paper lattice is a lattice")
    }

    /// Returns a builder pre-populated with the default C-types lattice, so
    /// user code can extend it with domain tags before building (§2.8).
    pub fn c_types_builder() -> LatticeBuilder {
        let mut b = LatticeBuilder::named("c_types");
        b.ensure("⊤");
        // Width strata.
        for (reg, members) in [
            ("reg64", &["int64", "uint64", "float64"][..]),
            ("reg32", &["float32", "code"][..]),
            ("reg16", &["int16", "uint16"][..]),
            ("reg8", &["int8", "uint8", "char"][..]),
        ] {
            b.add_under(reg, "⊤").expect("fresh");
            for m in members {
                b.add_under(m, reg).expect("fresh");
            }
        }
        // The signed/unsigned 32-bit integers share `integral32`, the
        // conclusion type of the Figure 13 ADD/SUB rules.
        b.add_under("integral32", "reg32").expect("fresh");
        b.add_under("int32", "integral32").expect("fresh");
        b.add_under("uint32", "integral32").expect("fresh");
        // The general C names sit directly below the width classes, and the
        // typedefs and semantic classes (§2.8, Figure 2) below those, so
        // that e.g. `#FileDescriptor ∧ int = #FileDescriptor`.
        b.add_under("int", "int32").expect("fresh");
        b.add_under("uint", "uint32").expect("fresh");
        b.add_under("float", "float32").expect("fresh");
        b.add_under("double", "float64").expect("fresh");
        for (tag, parent) in [
            ("#FileDescriptor", "int"),
            ("#SuccessZ", "int"),
            ("#SignalNumber", "int"),
            ("pid_t", "int"),
            ("bool_t", "int"),
            ("time_t", "int"),
            ("size_t", "uint"),
            ("uintptr_t", "uint"),
        ] {
            b.add_under(tag, parent).expect("fresh");
        }
        // Opaque pointed-to types (used as the Λ mark of a pointee node).
        for opaque in ["FILE", "HANDLE", "SOCKET", "cstring"] {
            b.add_under(opaque, "⊤").expect("fresh");
        }
        // Bottom below every leaf: connect under every element lacking
        // children; simplest is to connect ⊥ under all current elements.
        b.ensure("⊥");
        let names: Vec<&'static str> = b.names.iter().map(|s| s.as_str()).collect();
        for name in names {
            if name != "⊥" {
                b.le("⊥", name).expect("known");
            }
        }
        b
    }

    /// The default lattice of C scalar types, common typedefs, and semantic
    /// tags. Tree-shaped (plus ⊥), hence a valid lattice.
    pub fn c_types() -> Lattice {
        Lattice::c_types_builder()
            .build()
            .expect("the built-in C lattice is a lattice")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_lattice_orders() {
        let lat = Lattice::paper_example();
        let url = lat.element("url").unwrap();
        let s = lat.element("str").unwrap();
        let num = lat.element("num").unwrap();
        assert!(lat.leq(url, s));
        assert!(!lat.leq(s, url));
        assert!(!lat.leq(url, num));
        assert_eq!(lat.join(url, num), lat.top());
        assert_eq!(lat.meet(url, num), lat.bottom());
        assert_eq!(lat.join(url, s), s);
        assert_eq!(lat.name(lat.top()), "⊤");
        assert_eq!(lat.name(lat.bottom()), "⊥");
    }

    #[test]
    fn c_lattice_builds_and_tags_sit_under_int32() {
        let lat = Lattice::c_types();
        let fd = lat.element("#FileDescriptor").unwrap();
        let int = lat.element("int").unwrap();
        let int32 = lat.element("int32").unwrap();
        let reg32 = lat.element("reg32").unwrap();
        assert!(lat.leq(fd, int));
        assert!(lat.leq(int, int32));
        assert!(lat.leq(int32, reg32));
        // Tags meet their base type at the tag (Figure 2's int ∧ #FileDescriptor).
        assert_eq!(lat.meet(fd, int), fd);
        assert_eq!(lat.join(fd, lat.element("#SuccessZ").unwrap()), int);
        assert_eq!(
            lat.meet(fd, lat.element("#SuccessZ").unwrap()),
            lat.bottom()
        );
    }

    #[test]
    fn join_meet_laws_exhaustive_on_paper_lattice() {
        let lat = Lattice::paper_example();
        let elems: Vec<_> = lat.elements().collect();
        for &a in &elems {
            for &b in &elems {
                // Commutativity.
                assert_eq!(lat.join(a, b), lat.join(b, a));
                assert_eq!(lat.meet(a, b), lat.meet(b, a));
                // Absorption.
                assert_eq!(lat.join(a, lat.meet(a, b)), a);
                assert_eq!(lat.meet(a, lat.join(a, b)), a);
                // Consistency with ≤.
                assert_eq!(lat.leq(a, b), lat.join(a, b) == b);
                assert_eq!(lat.leq(a, b), lat.meet(a, b) == a);
                for &c in &elems {
                    // Associativity.
                    assert_eq!(lat.join(lat.join(a, b), c), lat.join(a, lat.join(b, c)));
                    assert_eq!(lat.meet(lat.meet(a, b), c), lat.meet(a, lat.meet(b, c)));
                }
            }
        }
    }

    #[test]
    fn rejects_non_lattices() {
        // Diamond with two incomparable upper bounds for {a, b}.
        let mut b = LatticeBuilder::new();
        for e in ["top", "u1", "u2", "a", "bb", "bot"] {
            b.add(e).unwrap();
        }
        for (l, u) in [
            ("u1", "top"),
            ("u2", "top"),
            ("a", "u1"),
            ("a", "u2"),
            ("bb", "u1"),
            ("bb", "u2"),
            ("bot", "a"),
            ("bot", "bb"),
        ] {
            b.le(l, u).unwrap();
        }
        // Validation may trip on the missing unique meet of {u1, u2} or the
        // missing unique join of {a, bb}, whichever pair is checked first.
        match b.build() {
            Err(LatticeError::NoJoin { candidates, .. })
            | Err(LatticeError::NoMeet { candidates, .. }) => {
                assert_eq!(candidates.len(), 2);
            }
            other => panic!("expected NoJoin/NoMeet, got {other:?}"),
        }
    }

    #[test]
    fn rejects_cycles() {
        let mut b = LatticeBuilder::new();
        b.add("a").unwrap();
        b.add("b").unwrap();
        b.le("a", "b").unwrap();
        b.le("b", "a").unwrap();
        assert!(matches!(b.build(), Err(LatticeError::NotAntisymmetric(..))));
    }

    #[test]
    fn duplicate_rejected() {
        let mut b = LatticeBuilder::new();
        b.add("x").unwrap();
        assert!(matches!(b.add("x"), Err(LatticeError::Duplicate(_))));
    }

    #[test]
    fn descriptor_round_trips_and_rebuilds_index_identical() {
        for lat in [Lattice::c_types(), Lattice::paper_example()] {
            let d = lat.descriptor().clone();
            let text = d.to_string();
            let back: LatticeDescriptor = text.parse().expect("canonical text parses");
            assert_eq!(back, d, "display→parse is the identity");
            assert_eq!(back.to_string(), text, "re-display is stable");
            let rebuilt = back.build().expect("canonical descriptor builds");
            assert_eq!(rebuilt.fingerprint(), lat.fingerprint());
            assert_eq!(rebuilt.descriptor(), lat.descriptor());
            // Index-identical: every element keeps its dense index, so
            // results of a descriptor-built lattice are bit-identical to
            // the compiled-in one.
            for e in lat.elements() {
                assert_eq!(rebuilt.name(e), lat.name(e));
            }
            assert_eq!(rebuilt.top(), lat.top());
            assert_eq!(rebuilt.bottom(), lat.bottom());
        }
    }

    #[test]
    fn redundant_edges_converge_to_the_canonical_fingerprint() {
        // a ≤ b ≤ c declared with the redundant transitive edge a ≤ c:
        // the built lattice's canonical descriptor keeps only the covers.
        let mut b = LatticeBuilder::named("redundant");
        for e in ["c", "b", "a"] {
            b.add(e).unwrap();
        }
        b.le("a", "b").unwrap();
        b.le("b", "c").unwrap();
        b.le("a", "c").unwrap();
        let with_redundant = b.build().unwrap();

        let mut b = LatticeBuilder::named("minimal");
        for e in ["c", "b", "a"] {
            b.add(e).unwrap();
        }
        b.le("a", "b").unwrap();
        b.le("b", "c").unwrap();
        let minimal = b.build().unwrap();

        // Same element order + same order relation ⇒ same fingerprint,
        // regardless of how the edges were declared or what the name is.
        assert_eq!(with_redundant.fingerprint(), minimal.fingerprint());
        assert_eq!(
            with_redundant.descriptor().edges(),
            minimal.descriptor().edges()
        );
    }

    #[test]
    fn descriptor_name_is_excluded_from_the_fingerprint() {
        let a = LatticeDescriptor::new(
            "one",
            vec!["top".into(), "bot".into()],
            vec![("bot".into(), "top".into())],
        )
        .unwrap();
        let b = LatticeDescriptor::new(
            "two",
            vec!["top".into(), "bot".into()],
            vec![("bot".into(), "top".into())],
        )
        .unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
        // …but element order matters (it fixes dense indices).
        let c = LatticeDescriptor::new(
            "one",
            vec!["bot".into(), "top".into()],
            vec![("bot".into(), "top".into())],
        )
        .unwrap();
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn descriptor_rejects_malformed_input() {
        assert!(matches!(
            LatticeDescriptor::new("bad name", vec!["a".into()], vec![]),
            Err(LatticeError::InvalidName(_))
        ));
        assert!(matches!(
            LatticeDescriptor::new("n", vec!["a,b".into()], vec![]),
            Err(LatticeError::InvalidName(_))
        ));
        assert!(matches!(
            LatticeDescriptor::new("n", vec!["a".into(), "a".into()], vec![]),
            Err(LatticeError::Duplicate(_))
        ));
        assert!(matches!(
            LatticeDescriptor::new("n", vec!["a".into()], vec![("a".into(), "z".into())]),
            Err(LatticeError::UnknownElement(_))
        ));
        for text in [
            "latice x { a ; }",
            "lattice x a ; }",
            "lattice x { a }",
            "lattice x { a ; b }",
            "lattice x { a ; a < b }",
            "lattice x { a ; } trailing",
        ] {
            assert!(
                text.parse::<LatticeDescriptor>().is_err(),
                "{text:?} must not parse"
            );
        }
    }

    #[test]
    fn chain_distance() {
        let lat = Lattice::c_types();
        let fd = lat.element("#FileDescriptor").unwrap();
        let int32 = lat.element("int32").unwrap();
        let top = lat.top();
        assert_eq!(lat.chain_distance(fd, fd), Some(0));
        assert_eq!(lat.chain_distance(fd, int32), Some(2)); // fd < int < int32
        assert_eq!(lat.chain_distance(int32, fd), Some(2));
        assert_eq!(lat.chain_distance(fd, top), Some(5)); // fd<int<int32<integral32<reg32<⊤
        let f32 = lat.element("float32").unwrap();
        assert_eq!(lat.chain_distance(fd, f32), None);
    }
}
