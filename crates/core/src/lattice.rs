//! The customizable auxiliary lattice Λ of atomic types and semantic tags
//! (§2.8, §3.5, Appendix E).
//!
//! Sketch nodes are marked with elements of a finite lattice Λ. The lattice
//! is uninterpreted by the core solver: it only needs `≤`, joins and meets.
//! Users extend it with ad-hoc typedef hierarchies and semantic classes such
//! as `#FileDescriptor` (§2.8: Windows handle hierarchies, `#signal-number`
//! seeds, …).
//!
//! ```
//! use retypd_core::Lattice;
//!
//! let lat = Lattice::c_types();
//! let int32 = lat.element("int32").unwrap();
//! let fd = lat.element("#FileDescriptor").unwrap();
//! assert!(lat.leq(fd, int32));
//! assert_eq!(lat.join(fd, int32), int32);
//! ```

use std::collections::HashMap;
use std::fmt;

use crate::intern::Symbol;

/// An element of a [`Lattice`], as a dense index.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LatticeElem(pub(crate) u16);

/// Errors produced while building or querying a lattice.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LatticeError {
    /// An edge mentioned an element that was never added.
    UnknownElement(String),
    /// The `≤` relation has a nontrivial cycle, so it is not a partial order.
    NotAntisymmetric(String, String),
    /// Two elements have no unique least upper bound.
    NoJoin {
        /// First element.
        a: String,
        /// Second element.
        b: String,
        /// The minimal upper bounds found (more than one, or none).
        candidates: Vec<String>,
    },
    /// Two elements have no unique greatest lower bound.
    NoMeet {
        /// First element.
        a: String,
        /// Second element.
        b: String,
        /// The maximal lower bounds found (more than one, or none).
        candidates: Vec<String>,
    },
    /// A name was added twice.
    Duplicate(String),
}

impl fmt::Display for LatticeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LatticeError::UnknownElement(n) => write!(f, "unknown lattice element {n:?}"),
            LatticeError::NotAntisymmetric(a, b) => {
                write!(f, "elements {a:?} and {b:?} are in a ≤-cycle")
            }
            LatticeError::NoJoin { a, b, candidates } => write!(
                f,
                "no unique join of {a:?} and {b:?}; minimal upper bounds: {candidates:?}"
            ),
            LatticeError::NoMeet { a, b, candidates } => write!(
                f,
                "no unique meet of {a:?} and {b:?}; maximal lower bounds: {candidates:?}"
            ),
            LatticeError::Duplicate(n) => write!(f, "duplicate lattice element {n:?}"),
        }
    }
}

impl std::error::Error for LatticeError {}

/// Incrementally builds a [`Lattice`] from elements and `≤` edges.
///
/// The builder validates on [`LatticeBuilder::build`] that the resulting
/// structure really is a lattice (antisymmetric order with unique binary
/// joins and meets); ill-formed hierarchies are rejected with a useful
/// error rather than silently mis-solving constraints later.
#[derive(Clone, Default, Debug)]
pub struct LatticeBuilder {
    names: Vec<Symbol>,
    index: HashMap<Symbol, u16>,
    edges: Vec<(u16, u16)>, // (lower, upper)
}

impl LatticeBuilder {
    /// Creates an empty builder.
    pub fn new() -> LatticeBuilder {
        LatticeBuilder::default()
    }

    /// Adds an element; returns an error if the name already exists.
    pub fn add(&mut self, name: &str) -> Result<(), LatticeError> {
        let sym = Symbol::intern(name);
        if self.index.contains_key(&sym) {
            return Err(LatticeError::Duplicate(name.to_owned()));
        }
        let id = self.names.len() as u16;
        self.names.push(sym);
        self.index.insert(sym, id);
        Ok(())
    }

    /// Adds an element if not already present.
    pub fn ensure(&mut self, name: &str) {
        let _ = self.add(name);
    }

    /// Declares `lower ≤ upper`.
    ///
    /// # Errors
    ///
    /// Returns [`LatticeError::UnknownElement`] if either side was not added.
    pub fn le(&mut self, lower: &str, upper: &str) -> Result<(), LatticeError> {
        let l = self.lookup(lower)?;
        let u = self.lookup(upper)?;
        self.edges.push((l, u));
        Ok(())
    }

    /// Adds `child` as a new element below `parent` (a convenience for
    /// tree-shaped hierarchies).
    pub fn add_under(&mut self, child: &str, parent: &str) -> Result<(), LatticeError> {
        self.add(child)?;
        self.le(child, parent)
    }

    fn lookup(&self, name: &str) -> Result<u16, LatticeError> {
        self.index
            .get(&Symbol::intern(name))
            .copied()
            .ok_or_else(|| LatticeError::UnknownElement(name.to_owned()))
    }

    /// Validates the order and computes join/meet tables.
    ///
    /// # Errors
    ///
    /// Returns an error if the relation is not antisymmetric or some pair of
    /// elements lacks a unique join or meet. The conventional fix for the
    /// latter is to introduce an explicit common bound element.
    pub fn build(self) -> Result<Lattice, LatticeError> {
        let n = self.names.len();
        assert!(n > 0, "a lattice needs at least one element");
        assert!(n < u16::MAX as usize, "too many lattice elements");
        // Reflexive-transitive closure of ≤ via simple propagation.
        let mut leq = vec![false; n * n];
        for i in 0..n {
            leq[i * n + i] = true;
        }
        for &(l, u) in &self.edges {
            leq[l as usize * n + u as usize] = true;
        }
        // Floyd–Warshall style closure.
        for k in 0..n {
            for i in 0..n {
                if leq[i * n + k] {
                    for j in 0..n {
                        if leq[k * n + j] {
                            leq[i * n + j] = true;
                        }
                    }
                }
            }
        }
        // Antisymmetry.
        for i in 0..n {
            for j in (i + 1)..n {
                if leq[i * n + j] && leq[j * n + i] {
                    return Err(LatticeError::NotAntisymmetric(
                        self.names[i].as_str().to_owned(),
                        self.names[j].as_str().to_owned(),
                    ));
                }
            }
        }
        // Join and meet tables with uniqueness validation.
        let name_of = |i: u16| self.names[i as usize].as_str().to_owned();
        let mut join = vec![0u16; n * n];
        let mut meet = vec![0u16; n * n];
        for a in 0..n {
            for b in a..n {
                let uppers: Vec<u16> = (0..n as u16)
                    .filter(|&c| leq[a * n + c as usize] && leq[b * n + c as usize])
                    .collect();
                let minimal: Vec<u16> = uppers
                    .iter()
                    .copied()
                    .filter(|&c| {
                        uppers
                            .iter()
                            .all(|&d| d == c || !leq[d as usize * n + c as usize])
                    })
                    .collect();
                if minimal.len() != 1 {
                    return Err(LatticeError::NoJoin {
                        a: name_of(a as u16),
                        b: name_of(b as u16),
                        candidates: minimal.into_iter().map(name_of).collect(),
                    });
                }
                join[a * n + b] = minimal[0];
                join[b * n + a] = minimal[0];

                let lowers: Vec<u16> = (0..n as u16)
                    .filter(|&c| leq[c as usize * n + a] && leq[c as usize * n + b])
                    .collect();
                let maximal: Vec<u16> = lowers
                    .iter()
                    .copied()
                    .filter(|&c| {
                        lowers
                            .iter()
                            .all(|&d| d == c || !leq[c as usize * n + d as usize])
                    })
                    .collect();
                if maximal.len() != 1 {
                    return Err(LatticeError::NoMeet {
                        a: name_of(a as u16),
                        b: name_of(b as u16),
                        candidates: maximal.into_iter().map(name_of).collect(),
                    });
                }
                meet[a * n + b] = maximal[0];
                meet[b * n + a] = maximal[0];
            }
        }
        // Top and bottom: the unique maximum/minimum must exist because
        // join/meet of everything exists; fold to find them.
        let mut top = 0u16;
        let mut bottom = 0u16;
        for i in 0..n as u16 {
            top = join[top as usize * n + i as usize];
            bottom = meet[bottom as usize * n + i as usize];
        }
        Ok(Lattice {
            names: self.names,
            index: self.index,
            n,
            leq,
            join,
            meet,
            top: LatticeElem(top),
            bottom: LatticeElem(bottom),
        })
    }
}

/// A validated finite lattice of atomic types and semantic tags.
#[derive(Clone, Debug)]
pub struct Lattice {
    names: Vec<Symbol>,
    index: HashMap<Symbol, u16>,
    n: usize,
    leq: Vec<bool>,
    join: Vec<u16>,
    meet: Vec<u16>,
    top: LatticeElem,
    bottom: LatticeElem,
}

impl Lattice {
    /// Looks up an element by name.
    pub fn element(&self, name: &str) -> Option<LatticeElem> {
        self.index.get(&Symbol::intern(name)).map(|&i| LatticeElem(i))
    }

    /// Looks up an element by interned symbol.
    pub fn element_sym(&self, sym: Symbol) -> Option<LatticeElem> {
        self.index.get(&sym).map(|&i| LatticeElem(i))
    }

    /// The element's name.
    pub fn name(&self, e: LatticeElem) -> &'static str {
        self.names[e.0 as usize].as_str()
    }

    /// `a ≤ b` in the lattice order.
    pub fn leq(&self, a: LatticeElem, b: LatticeElem) -> bool {
        self.leq[a.0 as usize * self.n + b.0 as usize]
    }

    /// Least upper bound.
    pub fn join(&self, a: LatticeElem, b: LatticeElem) -> LatticeElem {
        LatticeElem(self.join[a.0 as usize * self.n + b.0 as usize])
    }

    /// Greatest lower bound.
    pub fn meet(&self, a: LatticeElem, b: LatticeElem) -> LatticeElem {
        LatticeElem(self.meet[a.0 as usize * self.n + b.0 as usize])
    }

    /// The greatest element ⊤.
    pub fn top(&self) -> LatticeElem {
        self.top
    }

    /// The least element ⊥.
    pub fn bottom(&self) -> LatticeElem {
        self.bottom
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the lattice has exactly the trivial two elements; never true
    /// for the built-in lattices.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterates over all elements.
    pub fn elements(&self) -> impl Iterator<Item = LatticeElem> + '_ {
        (0..self.n as u16).map(LatticeElem)
    }

    /// The "distance" between two comparable elements: the length of the
    /// longest chain between them; used by the TIE-style evaluation metrics.
    /// Returns `None` for incomparable elements.
    pub fn chain_distance(&self, a: LatticeElem, b: LatticeElem) -> Option<u32> {
        let (lo, hi) = if self.leq(a, b) {
            (a, b)
        } else if self.leq(b, a) {
            (b, a)
        } else {
            return None;
        };
        // Longest chain from lo to hi by DFS over the interval [lo, hi].
        fn longest(lat: &Lattice, cur: LatticeElem, hi: LatticeElem) -> u32 {
            if cur == hi {
                return 0;
            }
            let mut best = 0;
            for nxt in lat.elements() {
                if nxt != cur && lat.leq(cur, nxt) && lat.leq(nxt, hi) {
                    // Only step to covers-ish elements: this DFS is exponential
                    // in pathological lattices but ours are small trees.
                    let d = longest(lat, nxt, hi);
                    best = best.max(d + 1);
                }
            }
            best
        }
        Some(longest(self, lo, hi))
    }

    /// The Figure 15 example lattice: `⊥ ⊑ url ⊑ str ⊑ ⊤`, `⊥ ⊑ num ⊑ ⊤`.
    pub fn paper_example() -> Lattice {
        let mut b = LatticeBuilder::new();
        for e in ["⊤", "num", "str", "url", "⊥"] {
            b.add(e).expect("fresh element");
        }
        b.le("num", "⊤").expect("known");
        b.le("str", "⊤").expect("known");
        b.le("url", "str").expect("known");
        b.le("⊥", "num").expect("known");
        b.le("⊥", "url").expect("known");
        b.build().expect("the paper lattice is a lattice")
    }

    /// Returns a builder pre-populated with the default C-types lattice, so
    /// user code can extend it with domain tags before building (§2.8).
    pub fn c_types_builder() -> LatticeBuilder {
        let mut b = LatticeBuilder::new();
        b.ensure("⊤");
        // Width strata.
        for (reg, members) in [
            ("reg64", &["int64", "uint64", "float64"][..]),
            ("reg32", &["float32", "code"][..]),
            ("reg16", &["int16", "uint16"][..]),
            ("reg8", &["int8", "uint8", "char"][..]),
        ] {
            b.add_under(reg, "⊤").expect("fresh");
            for m in members {
                b.add_under(m, reg).expect("fresh");
            }
        }
        // The signed/unsigned 32-bit integers share `integral32`, the
        // conclusion type of the Figure 13 ADD/SUB rules.
        b.add_under("integral32", "reg32").expect("fresh");
        b.add_under("int32", "integral32").expect("fresh");
        b.add_under("uint32", "integral32").expect("fresh");
        // The general C names sit directly below the width classes, and the
        // typedefs and semantic classes (§2.8, Figure 2) below those, so
        // that e.g. `#FileDescriptor ∧ int = #FileDescriptor`.
        b.add_under("int", "int32").expect("fresh");
        b.add_under("uint", "uint32").expect("fresh");
        b.add_under("float", "float32").expect("fresh");
        b.add_under("double", "float64").expect("fresh");
        for (tag, parent) in [
            ("#FileDescriptor", "int"),
            ("#SuccessZ", "int"),
            ("#SignalNumber", "int"),
            ("pid_t", "int"),
            ("bool_t", "int"),
            ("time_t", "int"),
            ("size_t", "uint"),
            ("uintptr_t", "uint"),
        ] {
            b.add_under(tag, parent).expect("fresh");
        }
        // Opaque pointed-to types (used as the Λ mark of a pointee node).
        for opaque in ["FILE", "HANDLE", "SOCKET", "cstring"] {
            b.add_under(opaque, "⊤").expect("fresh");
        }
        // Bottom below every leaf: connect under every element lacking
        // children; simplest is to connect ⊥ under all current elements.
        b.ensure("⊥");
        let names: Vec<&'static str> = b.names.iter().map(|s| s.as_str()).collect();
        for name in names {
            if name != "⊥" {
                b.le("⊥", name).expect("known");
            }
        }
        b
    }

    /// The default lattice of C scalar types, common typedefs, and semantic
    /// tags. Tree-shaped (plus ⊥), hence a valid lattice.
    pub fn c_types() -> Lattice {
        Lattice::c_types_builder()
            .build()
            .expect("the built-in C lattice is a lattice")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_lattice_orders() {
        let lat = Lattice::paper_example();
        let url = lat.element("url").unwrap();
        let s = lat.element("str").unwrap();
        let num = lat.element("num").unwrap();
        assert!(lat.leq(url, s));
        assert!(!lat.leq(s, url));
        assert!(!lat.leq(url, num));
        assert_eq!(lat.join(url, num), lat.top());
        assert_eq!(lat.meet(url, num), lat.bottom());
        assert_eq!(lat.join(url, s), s);
        assert_eq!(lat.name(lat.top()), "⊤");
        assert_eq!(lat.name(lat.bottom()), "⊥");
    }

    #[test]
    fn c_lattice_builds_and_tags_sit_under_int32() {
        let lat = Lattice::c_types();
        let fd = lat.element("#FileDescriptor").unwrap();
        let int = lat.element("int").unwrap();
        let int32 = lat.element("int32").unwrap();
        let reg32 = lat.element("reg32").unwrap();
        assert!(lat.leq(fd, int));
        assert!(lat.leq(int, int32));
        assert!(lat.leq(int32, reg32));
        // Tags meet their base type at the tag (Figure 2's int ∧ #FileDescriptor).
        assert_eq!(lat.meet(fd, int), fd);
        assert_eq!(lat.join(fd, lat.element("#SuccessZ").unwrap()), int);
        assert_eq!(
            lat.meet(fd, lat.element("#SuccessZ").unwrap()),
            lat.bottom()
        );
    }

    #[test]
    fn join_meet_laws_exhaustive_on_paper_lattice() {
        let lat = Lattice::paper_example();
        let elems: Vec<_> = lat.elements().collect();
        for &a in &elems {
            for &b in &elems {
                // Commutativity.
                assert_eq!(lat.join(a, b), lat.join(b, a));
                assert_eq!(lat.meet(a, b), lat.meet(b, a));
                // Absorption.
                assert_eq!(lat.join(a, lat.meet(a, b)), a);
                assert_eq!(lat.meet(a, lat.join(a, b)), a);
                // Consistency with ≤.
                assert_eq!(lat.leq(a, b), lat.join(a, b) == b);
                assert_eq!(lat.leq(a, b), lat.meet(a, b) == a);
                for &c in &elems {
                    // Associativity.
                    assert_eq!(lat.join(lat.join(a, b), c), lat.join(a, lat.join(b, c)));
                    assert_eq!(lat.meet(lat.meet(a, b), c), lat.meet(a, lat.meet(b, c)));
                }
            }
        }
    }

    #[test]
    fn rejects_non_lattices() {
        // Diamond with two incomparable upper bounds for {a, b}.
        let mut b = LatticeBuilder::new();
        for e in ["top", "u1", "u2", "a", "bb", "bot"] {
            b.add(e).unwrap();
        }
        for (l, u) in [
            ("u1", "top"),
            ("u2", "top"),
            ("a", "u1"),
            ("a", "u2"),
            ("bb", "u1"),
            ("bb", "u2"),
            ("bot", "a"),
            ("bot", "bb"),
        ] {
            b.le(l, u).unwrap();
        }
        // Validation may trip on the missing unique meet of {u1, u2} or the
        // missing unique join of {a, bb}, whichever pair is checked first.
        match b.build() {
            Err(LatticeError::NoJoin { candidates, .. })
            | Err(LatticeError::NoMeet { candidates, .. }) => {
                assert_eq!(candidates.len(), 2);
            }
            other => panic!("expected NoJoin/NoMeet, got {other:?}"),
        }
    }

    #[test]
    fn rejects_cycles() {
        let mut b = LatticeBuilder::new();
        b.add("a").unwrap();
        b.add("b").unwrap();
        b.le("a", "b").unwrap();
        b.le("b", "a").unwrap();
        assert!(matches!(b.build(), Err(LatticeError::NotAntisymmetric(..))));
    }

    #[test]
    fn duplicate_rejected() {
        let mut b = LatticeBuilder::new();
        b.add("x").unwrap();
        assert!(matches!(b.add("x"), Err(LatticeError::Duplicate(_))));
    }

    #[test]
    fn chain_distance() {
        let lat = Lattice::c_types();
        let fd = lat.element("#FileDescriptor").unwrap();
        let int32 = lat.element("int32").unwrap();
        let top = lat.top();
        assert_eq!(lat.chain_distance(fd, fd), Some(0));
        assert_eq!(lat.chain_distance(fd, int32), Some(2)); // fd < int < int32
        assert_eq!(lat.chain_distance(int32, fd), Some(2));
        assert_eq!(lat.chain_distance(fd, top), Some(5)); // fd<int<int32<integral32<reg32<⊤
        let f32 = lat.element("float32").unwrap();
        assert_eq!(lat.chain_distance(fd, f32), None);
    }
}
