//! The constraint graph: a finite encoding of the unconstrained pushdown
//! system `P_C` of Appendix D.
//!
//! Nodes are pairs *(derived type variable, variance)*; the variance
//! component tracks whether the ambient subtyping direction has been flipped
//! by contravariant labels (the `⊕`/`⊖` superscripts on control states in
//! Definition D.3). Edges come in three kinds:
//!
//! * **ε edges** encode constraints: `l ⊑ r` yields `(l,⊕) → (r,⊕)` and the
//!   dual `(r,⊖) → (l,⊖)` (the `rule⊕`/`rule⊖` constructions).
//! * **pop edges** `(x,v) --pop ℓ--> (x.ℓ, v·⟨ℓ⟩)` read a capability label
//!   from the input (the `∆start`-side chains).
//! * **push edges** `(x.ℓ,v) --push ℓ--> (x, v·⟨ℓ⟩)` write a capability
//!   label to the output (the `∆end`-side chains).
//!
//! A proof of `X.u ⊑ Y.v` in the Figure 3 system corresponds to a path from
//! `(X, ⟨u⟩)` to `(Y, ⟨v⟩)` whose stack-operation word reduces to
//! `pop u ⊗ push v` (Theorem D.1). [`crate::saturation`] closes the graph so
//! that balanced push/pop excursions become explicit ε edges.

use std::collections::hash_map::Entry;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;

use crate::constraint::ConstraintSet;
use crate::dtv::{BaseVar, DerivedVar};
use crate::label::Label;
use crate::variance::Variance;

/// Dense index of a node `(derived type variable, variance)`.
///
/// The two variances of a derived variable occupy adjacent indices so that
/// the mirror involution of Lemma D.7 is `id ^ 1`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The mirror node `(d, ¬v)` (Lemma D.7's involution).
    pub fn mirror(self) -> NodeId {
        NodeId(self.0 ^ 1)
    }

    /// The variance component of this node.
    pub fn variance(self) -> Variance {
        if self.0 & 1 == 0 {
            Variance::Covariant
        } else {
            Variance::Contravariant
        }
    }

    fn dtv_index(self) -> usize {
        (self.0 >> 1) as usize
    }
}

/// Kind of a graph edge (see module docs).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum EdgeKind {
    /// A subtype step (weight 1 in the `StackOp` semiring).
    Eps,
    /// Reads label `ℓ` from the input stack.
    Pop(Label),
    /// Writes label `ℓ` to the output stack.
    Push(Label),
}

/// A directed edge to `to` with the given kind.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Edge {
    /// Target node.
    pub to: NodeId,
    /// Edge kind.
    pub kind: EdgeKind,
}

/// The constraint graph for one constraint set.
#[derive(Clone, Debug)]
pub struct ConstraintGraph {
    dtvs: Vec<DerivedVar>,
    dtv_ids: HashMap<DerivedVar, u32>,
    out: Vec<Vec<Edge>>,
    edge_set: HashSet<(NodeId, NodeId, EdgeKind)>,
}

impl ConstraintGraph {
    /// Builds the graph for a constraint set: materializes every prefix of
    /// every mentioned derived variable (in both variances) with its
    /// push/pop chains, and adds the ε edges for each subtype constraint
    /// and its dual.
    ///
    /// The materialized set is additionally closed under swapping `.load` ↔
    /// `.store` at any position. The pushdown system's `∆ptr` rule family
    /// (`v.store ⊑ v.load` for *every* derived variable `v`) can rewrite a
    /// pointer label mid-derivation, so the sibling chain must exist for
    /// saturation's lazy S-POINTER clause to find its pop edge. Sibling
    /// chains that correspond to no real capability are pruned later by the
    /// shape quotient (see [`crate::simplify`]).
    pub fn build(cs: &ConstraintSet) -> ConstraintGraph {
        let mut g = ConstraintGraph {
            dtvs: Vec::new(),
            dtv_ids: HashMap::new(),
            out: Vec::new(),
            edge_set: HashSet::new(),
        };
        for dv in cs.mentioned_vars() {
            g.ensure_dtv(&dv);
        }
        // Sibling closure: `dtvs` grows monotonically, so a plain index scan
        // reaches a fixpoint (each variable has finitely many load/store
        // positions to toggle).
        let mut idx = 0;
        while idx < g.dtvs.len() {
            let d = g.dtvs[idx].clone();
            for (i, &l) in d.path().iter().enumerate() {
                let swapped = match l {
                    Label::Load => Label::Store,
                    Label::Store => Label::Load,
                    _ => continue,
                };
                let mut path = d.path().to_vec();
                path[i] = swapped;
                g.ensure_dtv(&DerivedVar::with_path(d.base(), path));
            }
            idx += 1;
        }
        for c in cs.subtypes() {
            g.add_constraint_edges(&c.lhs, &c.rhs);
        }
        g
    }

    /// Ensures the derived variable and all its prefixes are materialized,
    /// with pop/push chain edges in both variance rows. Returns the id of
    /// the dtv itself.
    pub fn ensure_dtv(&mut self, dv: &DerivedVar) -> u32 {
        if let Some(&id) = self.dtv_ids.get(dv) {
            return id;
        }
        // Materialize parent first.
        let parent = dv.parent();
        let parent_id = parent.as_ref().map(|p| self.ensure_dtv(p));
        let id = self.dtvs.len() as u32;
        self.dtvs.push(dv.clone());
        self.dtv_ids.insert(dv.clone(), id);
        self.out.push(Vec::new()); // (dtv, ⊕)
        self.out.push(Vec::new()); // (dtv, ⊖)
        if let (Some(pid), Some(label)) = (parent_id, dv.last_label()) {
            // Chain edges in both variance rows:
            //   (x, v)   --pop ℓ-->  (x.ℓ, v·⟨ℓ⟩)
            //   (x.ℓ, v) --push ℓ--> (x,   v·⟨ℓ⟩)
            for v in [Variance::Covariant, Variance::Contravariant] {
                let x = Self::node_of(pid, v);
                let xl = Self::node_of(id, v.compose(label.variance()));
                self.add_edge(x, xl, EdgeKind::Pop(label));
                let xl_src = Self::node_of(id, v);
                let x_tgt = Self::node_of(pid, v.compose(label.variance()));
                self.add_edge(xl_src, x_tgt, EdgeKind::Push(label));
            }
        }
        id
    }

    /// Adds the ε edges for constraint `l ⊑ r` (and its dual), materializing
    /// both sides if needed.
    pub fn add_constraint_edges(&mut self, l: &DerivedVar, r: &DerivedVar) {
        let lid = self.ensure_dtv(l);
        let rid = self.ensure_dtv(r);
        let co = Variance::Covariant;
        let contra = Variance::Contravariant;
        self.add_edge(
            Self::node_of(lid, co),
            Self::node_of(rid, co),
            EdgeKind::Eps,
        );
        self.add_edge(
            Self::node_of(rid, contra),
            Self::node_of(lid, contra),
            EdgeKind::Eps,
        );
    }

    fn node_of(dtv_id: u32, v: Variance) -> NodeId {
        NodeId(dtv_id * 2 + if v.is_covariant() { 0 } else { 1 })
    }

    /// Adds an edge if not already present; returns true if new.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, kind: EdgeKind) -> bool {
        if from == to && kind == EdgeKind::Eps {
            return false;
        }
        if self.edge_set.insert((from, to, kind)) {
            self.out[from.0 as usize].push(Edge { to, kind });
            true
        } else {
            false
        }
    }

    /// Looks up the node for `(dv, variance)` if the dtv is materialized.
    pub fn node(&self, dv: &DerivedVar, v: Variance) -> Option<NodeId> {
        self.dtv_ids.get(dv).map(|&id| Self::node_of(id, v))
    }

    /// True if the derived variable is materialized (mentioned in the
    /// constraint set, a prefix of a mention, or in the load/store sibling
    /// closure thereof). Entailment queries between materialized variables
    /// are complete with respect to Figure 3; deeper words are supported
    /// only through the untouched-suffix mechanism (see
    /// [`crate::transducer::accepts`]).
    pub fn contains(&self, dv: &DerivedVar) -> bool {
        self.dtv_ids.contains_key(dv)
    }

    /// The derived variable of a node.
    pub fn dtv(&self, n: NodeId) -> &DerivedVar {
        &self.dtvs[n.dtv_index()]
    }

    /// Outgoing edges of a node.
    pub fn edges_out(&self, n: NodeId) -> &[Edge] {
        &self.out[n.0 as usize]
    }

    /// Number of nodes (twice the number of materialized dtvs).
    pub fn node_count(&self) -> usize {
        self.out.len()
    }

    /// Total number of edges.
    pub fn edge_count(&self) -> usize {
        self.edge_set.len()
    }

    /// Iterates over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.out.len() as u32).map(NodeId)
    }

    /// Iterates over all materialized derived variables.
    pub fn dtvs(&self) -> impl Iterator<Item = &DerivedVar> {
        self.dtvs.iter()
    }

    /// All nodes whose dtv is the bare `base` variable.
    pub fn base_nodes(&self, base: BaseVar) -> Vec<NodeId> {
        let dv = DerivedVar::new(base);
        match self.dtv_ids.get(&dv) {
            Some(&id) => vec![
                Self::node_of(id, Variance::Covariant),
                Self::node_of(id, Variance::Contravariant),
            ],
            None => vec![],
        }
    }

    /// The set of base variables appearing in the graph.
    pub fn bases(&self) -> BTreeSet<BaseVar> {
        self.dtvs.iter().map(|d| d.base()).collect()
    }

    /// Builds the reverse adjacency list (for backward reachability).
    pub fn reverse_adjacency(&self) -> Vec<Vec<Edge>> {
        let mut rev = vec![Vec::new(); self.out.len()];
        for n in self.nodes() {
            for e in self.edges_out(n) {
                rev[e.to.0 as usize].push(Edge { to: n, kind: e.kind });
            }
        }
        rev
    }
}

impl fmt::Display for ConstraintGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for n in self.nodes() {
            for e in self.edges_out(n) {
                let kind = match e.kind {
                    EdgeKind::Eps => "ε".to_owned(),
                    EdgeKind::Pop(l) => format!("pop {l}"),
                    EdgeKind::Push(l) => format!("push {l}"),
                };
                writeln!(
                    f,
                    "({}, {}) --{}--> ({}, {})",
                    self.dtv(n),
                    n.variance(),
                    kind,
                    self.dtv(e.to),
                    e.to.variance()
                )?;
            }
        }
        Ok(())
    }
}

/// Deduplicating map from derived variables to ids, exposed for analyses
/// that need to intern extra dtvs mid-flight.
#[derive(Clone, Default, Debug)]
pub struct DtvInterner {
    map: HashMap<DerivedVar, u32>,
    items: Vec<DerivedVar>,
}

impl DtvInterner {
    /// Creates an empty interner.
    pub fn new() -> DtvInterner {
        DtvInterner::default()
    }

    /// Interns a derived variable.
    pub fn intern(&mut self, dv: &DerivedVar) -> u32 {
        match self.map.entry(dv.clone()) {
            Entry::Occupied(o) => *o.get(),
            Entry::Vacant(v) => {
                let id = self.items.len() as u32;
                self.items.push(dv.clone());
                v.insert(id);
                id
            }
        }
    }

    /// Resolves an id.
    pub fn resolve(&self, id: u32) -> &DerivedVar {
        &self.items[id as usize]
    }

    /// Number of interned variables.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_constraint_set;

    #[test]
    fn chains_materialize_with_variance() {
        let cs = parse_constraint_set("p.load.σ32@0 <= x").unwrap();
        let g = ConstraintGraph::build(&cs);
        // dtvs: p, p.load, p.load.σ32@0, x, plus the sibling-closure chain
        // p.store, p.store.σ32@0 → 12 nodes.
        assert_eq!(g.node_count(), 12);
        let p = crate::parse::parse_derived_var("p").unwrap();
        let pl = crate::parse::parse_derived_var("p.load").unwrap();
        let n_p = g.node(&p, Variance::Covariant).unwrap();
        // (p,⊕) --pop load--> (p.load,⊕)
        let has_pop = g
            .edges_out(n_p)
            .iter()
            .any(|e| e.kind == EdgeKind::Pop(Label::Load) && g.dtv(e.to) == &pl);
        assert!(has_pop);
    }

    #[test]
    fn store_chain_flips_variance() {
        let cs = parse_constraint_set("x <= p.store").unwrap();
        let g = ConstraintGraph::build(&cs);
        let p = crate::parse::parse_derived_var("p").unwrap();
        let ps = crate::parse::parse_derived_var("p.store").unwrap();
        let n_ps_co = g.node(&ps, Variance::Covariant).unwrap();
        // (p.store,⊕) --push store--> (p,⊖): variance flips through store.
        let pushes: Vec<_> = g
            .edges_out(n_ps_co)
            .iter()
            .filter(|e| matches!(e.kind, EdgeKind::Push(Label::Store)))
            .collect();
        assert_eq!(pushes.len(), 1);
        assert_eq!(g.dtv(pushes[0].to), &p);
        assert_eq!(pushes[0].to.variance(), Variance::Contravariant);
    }

    #[test]
    fn constraint_edges_have_duals() {
        let cs = parse_constraint_set("a <= b").unwrap();
        let g = ConstraintGraph::build(&cs);
        let a = DerivedVar::var("a");
        let b = DerivedVar::var("b");
        let a_co = g.node(&a, Variance::Covariant).unwrap();
        let b_contra = g.node(&b, Variance::Contravariant).unwrap();
        assert!(g
            .edges_out(a_co)
            .iter()
            .any(|e| e.kind == EdgeKind::Eps && g.dtv(e.to) == &b));
        assert!(g
            .edges_out(b_contra)
            .iter()
            .any(|e| e.kind == EdgeKind::Eps && g.dtv(e.to) == &a));
    }

    #[test]
    fn mirror_involution() {
        let n = NodeId(4);
        assert_eq!(n.variance(), Variance::Covariant);
        assert_eq!(n.mirror().variance(), Variance::Contravariant);
        assert_eq!(n.mirror().mirror(), n);
    }
}
