//! The wave scheduler's worker pool.
//!
//! [`run_indexed`] executes `n` independent tasks on up to `workers`
//! scoped `std::thread`s and returns the results *in task order*, which is
//! what makes the parallel driver's merges deterministic: however the
//! OS interleaves the workers, the caller applies outputs in the same
//! order the sequential solver would have produced them.

use retypd_core::sync::atomic::{AtomicUsize, Ordering};
use retypd_core::sync::Mutex;

/// Runs `f(0..n)` across up to `workers` threads, returning results indexed
/// by task. Work is distributed by an atomic cursor (tasks are coarse —
/// whole SCC solves or whole modules — so contention is negligible).
/// Panics in any task propagate to the caller once the scope joins.
pub fn run_indexed<T, F>(n: usize, workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_indexed_observed(n, workers, f, |_, _| {})
}

/// [`run_indexed`] with a completion observer: `observe(i, &result)` runs
/// on the worker thread the moment task `i` finishes, *before* the scope
/// joins — this is what streams each module's report out of
/// [`crate::AnalysisSession::run_with`] while later tasks are still
/// solving. Observations arrive in completion order (any interleaving);
/// the returned `Vec` is still in task order.
pub fn run_indexed_observed<T, F, O>(n: usize, workers: usize, f: F, observe: O) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    O: Fn(usize, &T) + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.max(1).min(n);
    if workers == 1 {
        return (0..n)
            .map(|i| {
                let out = f(i);
                observe(i, &out);
                out
            })
            .collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    // Trace context is thread-local; carry the dispatching thread's trace
    // id into every worker so spans emitted inside tasks attribute to the
    // request that scheduled them.
    let trace = retypd_telemetry::current_trace();
    // retypd-lint: allow(no-raw-thread) scoped spawns are not modeled
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let _trace = retypd_telemetry::set_current_trace(trace);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let out = f(i);
                    observe(i, &out);
                    *slots[i].lock().expect("result slot") = Some(out);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot")
                .expect("every task index was claimed exactly once")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_task_order() {
        for workers in [1, 2, 8] {
            let out = run_indexed(37, workers, |i| i * i);
            assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_and_single_task() {
        assert!(run_indexed(0, 4, |i| i).is_empty());
        assert_eq!(run_indexed(1, 4, |i| i + 1), vec![1]);
    }

    #[test]
    fn observer_sees_every_task_exactly_once() {
        for workers in [1, 4] {
            let seen = Mutex::new(vec![0u32; 23]);
            let out = run_indexed_observed(
                23,
                workers,
                |i| i * 2,
                |i, &v| {
                    assert_eq!(v, i * 2, "observer gets the task's own result");
                    seen.lock().expect("seen")[i] += 1;
                },
            );
            assert_eq!(out, (0..23).map(|i| i * 2).collect::<Vec<_>>());
            assert!(seen.into_inner().expect("seen").iter().all(|&c| c == 1));
        }
    }
}
