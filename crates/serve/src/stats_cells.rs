//! Lock-free per-shard statistics cells.
//!
//! One shard thread `publish`es after every job and any number of `stats`
//! probes `snapshot` concurrently — plain relaxed stores and loads, one
//! atomic cell per field, no lock. The previous design republished a
//! whole `WireShardStats` under a `Mutex` per job, so a probe could
//! contend with the solve loop (and vice versa); independent counters
//! never need that coherence. A snapshot may mix fields from two adjacent
//! publishes, which is fine: every field is individually monotone over a
//! shard's life (entry gauges move with the cache but are re-read whole),
//! and the wire contract promises freshness, not a consistent cut.
//!
//! Ordering: every access is `Relaxed` by design — see the policy in
//! `retypd_core::sync`. The model-checked regression for this protocol
//! (publish concurrent with snapshot; counters never travel backwards)
//! lives in `crates/conc-check`.

use retypd_core::sync::atomic::{AtomicU64, Ordering};

use retypd_driver::{AnalysisDriver, CacheStats, PersistStats};

use crate::wire::WireShardStats;

/// One shard's published statistics, one atomic cell per field.
#[derive(Debug, Default)]
pub struct ShardStatsCells {
    jobs: AtomicU64,
    rebuilds: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    scheme_entries: AtomicU64,
    refine_entries: AtomicU64,
    persisted_entries: AtomicU64,
    replayed_entries: AtomicU64,
    replay_ns: AtomicU64,
}

impl ShardStatsCells {
    /// Refreshes every cell from the shard's driver. Runs on the shard
    /// thread (the only writer), so the driver walk never blocks a probe.
    pub fn publish(&self, driver: &AnalysisDriver<'static>, jobs: u64, rebuilds: u64) {
        let cache = driver.cache_stats();
        let persist = driver.persist_stats().unwrap_or_default();
        self.publish_counts(jobs, rebuilds, &cache, &persist);
    }

    /// The driver-independent publish: stores every field. Split out from
    /// [`ShardStatsCells::publish`] so the model-checked tests can drive
    /// the cells with synthetic counter values (no driver in a model).
    pub fn publish_counts(
        &self,
        jobs: u64,
        rebuilds: u64,
        cache: &CacheStats,
        persist: &PersistStats,
    ) {
        self.jobs.store(jobs, Ordering::Relaxed);
        self.rebuilds.store(rebuilds, Ordering::Relaxed);
        self.hits.store(cache.hits, Ordering::Relaxed);
        self.misses.store(cache.misses, Ordering::Relaxed);
        self.evictions.store(cache.evictions, Ordering::Relaxed);
        self.scheme_entries.store(cache.scheme_entries as u64, Ordering::Relaxed);
        self.refine_entries.store(cache.refine_entries as u64, Ordering::Relaxed);
        self.persisted_entries.store(persist.persisted_entries, Ordering::Relaxed);
        self.replayed_entries.store(persist.replayed_entries, Ordering::Relaxed);
        self.replay_ns.store(persist.replay_ns, Ordering::Relaxed);
    }

    /// Reads every cell into a wire snapshot, tagged with the shard index.
    pub fn snapshot(&self, shard: usize) -> WireShardStats {
        WireShardStats {
            shard,
            jobs: self.jobs.load(Ordering::Relaxed),
            rebuilds: self.rebuilds.load(Ordering::Relaxed),
            cache: CacheStats {
                hits: self.hits.load(Ordering::Relaxed),
                misses: self.misses.load(Ordering::Relaxed),
                evictions: self.evictions.load(Ordering::Relaxed),
                scheme_entries: self.scheme_entries.load(Ordering::Relaxed) as usize,
                refine_entries: self.refine_entries.load(Ordering::Relaxed) as usize,
            },
            persisted_entries: self.persisted_entries.load(Ordering::Relaxed),
            replayed_entries: self.replayed_entries.load(Ordering::Relaxed),
            replay_ns: self.replay_ns.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_the_latest_publish() {
        let cells = ShardStatsCells::default();
        let cache = CacheStats {
            hits: 7,
            misses: 3,
            evictions: 1,
            scheme_entries: 5,
            refine_entries: 4,
        };
        let persist = PersistStats {
            persisted_entries: 9,
            replayed_entries: 2,
            replay_ns: 123,
            ..PersistStats::default()
        };
        cells.publish_counts(10, 1, &cache, &persist);
        let snap = cells.snapshot(3);
        assert_eq!(snap.shard, 3);
        assert_eq!(snap.jobs, 10);
        assert_eq!(snap.rebuilds, 1);
        assert_eq!((snap.cache.hits, snap.cache.misses), (7, 3));
        assert_eq!(snap.cache.evictions, 1);
        assert_eq!((snap.cache.scheme_entries, snap.cache.refine_entries), (5, 4));
        assert_eq!(snap.persisted_entries, 9);
        assert_eq!((snap.replayed_entries, snap.replay_ns), (2, 123));
    }
}
