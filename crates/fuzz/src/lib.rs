//! # retypd-fuzz
//!
//! A deterministic, structure-aware fuzzing harness for the `retypd-serve`
//! wire protocol. No external fuzzer crates: mutation is driven by the
//! vendored seeded RNG, so every run — and every failure — is exactly
//! reproducible from `--seed`/`--iters` alone.
//!
//! Three mutator tiers (see [`mutate`]):
//!
//! * **Raw** — byte-level damage to valid request frames plus
//!   length-prefix attacks (lying, over-cap, truncated, zero prefixes).
//! * **Structural** — JSON-tree mutations of valid request payloads:
//!   member removal/duplication, type swaps, nesting bombs, huge numbers
//!   and strings, plus text-level truncation.
//! * **Grammar** — grammar-aware mutations of the request envelope, the
//!   [`retypd_core::LatticeDescriptor`] canonical text, and constraint-set
//!   text, assembled from the grammar's own vocabulary so deep parser
//!   branches are actually reached.
//!
//! Every mutant runs against **both** the in-process decode path
//! (`serve::json` + `wire::Request::decode`, plus the
//! [`retypd_core::fuzzing`] parser checkers for grammar strings) and a
//! **live socket server**, under the oracles in [`oracle`]:
//!
//! 1. every delivered frame gets a reply or a clean close — never a hang
//!    past the deadline;
//! 2. no panic anywhere (in-process panics are caught; a server-side panic
//!    would surface as a dropped connection plus a failed liveness probe);
//! 3. bounded wall-clock per input;
//! 4. bounded allocation growth, via the [`alloc::CountingAlloc`] global
//!    allocator hook.
//!
//! Failing inputs are minimized (greedy chunk removal) and can be saved
//! into the committed regression corpus under `corpus/` (see [`corpus`]),
//! which `tests/corpus_replay.rs` replays over a live socket at 1 and N
//! shards on every `cargo test`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod alloc;
pub mod corpus;
pub mod mutate;
pub mod oracle;

/// True when the bytes could decode (or be mutated into decoding) as a
/// `shutdown` request. The fuzz loop shares one live server across all
/// iterations, so shutdown requests are never delivered to the socket —
/// they are still exercised in-process.
pub fn contains_shutdown(bytes: &[u8]) -> bool {
    let needle = b"shutdown";
    bytes.len() >= needle.len() && bytes.windows(needle.len()).any(|w| w == needle)
}

/// Greedy chunk-removal minimization (ddmin-lite): repeatedly deletes the
/// largest chunks whose removal keeps `still_fails` true, halving the
/// chunk size until single bytes. Bounded by `max_probes` candidate
/// evaluations so minimization of an expensive reproducer stays cheap.
pub fn minimize(input: &[u8], max_probes: usize, still_fails: &mut dyn FnMut(&[u8]) -> bool) -> Vec<u8> {
    let mut cur = input.to_vec();
    let mut probes = 0usize;
    let mut chunk = (cur.len() / 2).max(1);
    loop {
        let mut i = 0;
        while i + chunk <= cur.len() {
            if probes >= max_probes {
                return cur;
            }
            let mut cand = cur.clone();
            cand.drain(i..i + chunk);
            probes += 1;
            if still_fails(&cand) {
                cur = cand;
            } else {
                i += chunk;
            }
        }
        if chunk == 1 {
            return cur;
        }
        chunk /= 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimize_strips_irrelevant_bytes() {
        // Failure: input contains the byte 0xFF anywhere.
        let input: Vec<u8> = (0..64u8).chain([0xFF]).chain(64..128u8).collect();
        let min = minimize(&input, 10_000, &mut |b| b.contains(&0xFF));
        assert_eq!(min, vec![0xFF]);
    }

    #[test]
    fn shutdown_guard_matches_embedded_keyword() {
        assert!(contains_shutdown(br#"{"kind":"shutdown"}"#));
        assert!(!contains_shutdown(br#"{"kind":"stats"}"#));
        assert!(!contains_shutdown(b"shu"));
    }
}
