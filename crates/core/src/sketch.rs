//! Sketches: the semantic model of the type system (§3.5, Appendix E).
//!
//! A sketch is a possibly infinite, finitely-branching regular tree with
//! edges labeled by field labels and nodes marked with elements of the
//! auxiliary lattice Λ. Collapsing isomorphic subtrees represents a sketch
//! as a deterministic finite automaton whose every state is accepting
//! (the language is prefix-closed).
//!
//! Sketches form a lattice (Figure 18):
//!
//! * `L(X ⊓ Y) = L(X) ∪ L(Y)` — *more* capabilities is *lower* (more
//!   constrained);
//! * `L(X ⊔ Y) = L(X) ∩ L(Y)`;
//! * node marks combine by `∧`/`∨` according to the variance of the word
//!   reaching the node.
//!
//! Sketch shapes are inferred from the [`crate::shapes::ShapeQuotient`]
//! (Theorem 3.1) and the marks are solved from the saturated constraint
//! graph (Algorithm F.2's `SOLVE`): at each node, lower bounds are joined
//! into the mark and upper bounds are met into it.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;

use crate::dtv::{BaseVar, DerivedVar};
use crate::fxhash::FxHashMap;
use crate::graph::ConstraintGraph;
use crate::label::Label;
use crate::lattice::{Lattice, LatticeElem};
use crate::shapes::{ClassId, ShapeQuotient};
use crate::transducer::accepts;
use crate::variance::Variance;

/// State index within a [`Sketch`].
pub type SketchState = u32;

#[derive(Clone, PartialEq, Eq, Debug)]
struct Node {
    mark: LatticeElem,
    lower: LatticeElem,
    upper: LatticeElem,
    edges: BTreeMap<Label, SketchState>,
}

/// A sketch: a rooted, deterministic, prefix-closed automaton over field
/// labels with Λ-marked states.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Sketch {
    nodes: Vec<Node>,
    root: SketchState,
}

impl Sketch {
    /// The trivial sketch `{ε}` with the given root mark.
    pub fn leaf(mark: LatticeElem) -> Sketch {
        Sketch::leaf_with_interval(mark, mark, mark)
    }

    /// The trivial sketch `{ε}` with an explicit `[lower, upper]` interval.
    pub fn leaf_with_interval(
        mark: LatticeElem,
        lower: LatticeElem,
        upper: LatticeElem,
    ) -> Sketch {
        Sketch {
            nodes: vec![Node {
                mark,
                lower,
                upper,
                edges: BTreeMap::new(),
            }],
            root: 0,
        }
    }

    /// The ⊤ sketch: language `{ε}`, marked ⊤ (the greatest sketch).
    pub fn top(lattice: &Lattice) -> Sketch {
        Sketch::leaf(lattice.top())
    }

    /// The root state.
    pub fn root(&self) -> SketchState {
        self.root
    }

    /// The mark of a state.
    pub fn mark(&self, s: SketchState) -> LatticeElem {
        self.nodes[s as usize].mark
    }

    /// The `[lower, upper]` bound interval of a state (used by the
    /// TIE-style evaluation metrics: interval size and conservativeness).
    pub fn interval(&self, s: SketchState) -> (LatticeElem, LatticeElem) {
        let n = &self.nodes[s as usize];
        (n.lower, n.upper)
    }

    /// The labeled successors of a state.
    pub fn edges(&self, s: SketchState) -> impl Iterator<Item = (Label, SketchState)> + '_ {
        self.nodes[s as usize].edges.iter().map(|(&l, &t)| (l, t))
    }

    /// Follows one label.
    pub fn step(&self, s: SketchState, l: Label) -> Option<SketchState> {
        self.nodes[s as usize].edges.get(&l).copied()
    }

    /// Follows a word from the root.
    pub fn walk(&self, word: &[Label]) -> Option<SketchState> {
        let mut cur = self.root;
        for &l in word {
            cur = self.step(cur, l)?;
        }
        Some(cur)
    }

    /// True if the word is in the sketch's language.
    pub fn contains_word(&self, word: &[Label]) -> bool {
        self.walk(word).is_some()
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// A sketch always has at least the root state.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Infers the sketch of `base` from the shape quotient, solving marks
    /// from the saturated graph (Algorithm F.2's `SOLVE`):
    ///
    /// * shape: the sub-automaton of the quotient reachable from `base`'s
    ///   class, with states split by path variance;
    /// * marks: initialized to ⊤ at covariant nodes and ⊥ at contravariant
    ///   nodes, then `ν := (ν ∨ ⋁ lowers) ∧ ⋀ uppers` where the bounds are
    ///   the type constants κ with `κ ⊑ base.u` / `base.u ⊑ κ` entailed.
    ///
    /// Returns `None` if `base` has no class (never mentioned).
    pub fn infer(
        base: BaseVar,
        g: &ConstraintGraph,
        quotient: &ShapeQuotient,
        lattice: &Lattice,
        consts: &[BaseVar],
    ) -> Option<Sketch> {
        let root_class = quotient.walk(base, &[])?;
        // BFS over (class, variance), tracking a shortest representative
        // word per state for the bound queries.
        let mut index: FxHashMap<(ClassId, Variance), SketchState> = FxHashMap::default();
        let mut nodes: Vec<Node> = Vec::new();
        let mut reps: Vec<Vec<Label>> = Vec::new();
        let mut queue: VecDeque<(ClassId, Variance)> = VecDeque::new();
        index.insert((root_class, Variance::Covariant), 0);
        nodes.push(Node {
            mark: lattice.top(),
            lower: lattice.bottom(),
            upper: lattice.top(),
            edges: BTreeMap::new(),
        });
        reps.push(Vec::new());
        queue.push_back((root_class, Variance::Covariant));
        while let Some((c, v)) = queue.pop_front() {
            let sid = index[&(c, v)];
            let rep = reps[sid as usize].clone();
            for (l, tc) in quotient.successors(c) {
                let tv = v * l.variance();
                let entry = (tc, tv);
                let tid = match index.get(&entry) {
                    Some(&t) => t,
                    None => {
                        let t = nodes.len() as SketchState;
                        index.insert(entry, t);
                        nodes.push(Node {
                            mark: lattice.top(),
                            lower: lattice.bottom(),
                            upper: lattice.top(),
                            edges: BTreeMap::new(),
                        });
                        let mut w = rep.clone();
                        w.push(l);
                        reps.push(w);
                        queue.push_back(entry);
                        t
                    }
                };
                nodes[sid as usize].edges.insert(l, tid);
            }
        }
        // Solve the marks. Display policy per Figure 5: a covariant node
        // (output-like) shows the join of its lower bounds — everything
        // that flows into it; a contravariant node (input-like) shows the
        // meet of its upper bounds — everything demanded of it. The other
        // bound is used as a fallback when the primary one is degenerate.
        for (i, node) in nodes.iter_mut().enumerate() {
            let word = &reps[i];
            let variance = crate::word_variance(word);
            let dv = DerivedVar::with_path(base, word.clone());
            let mut lower = lattice.bottom();
            let mut upper = lattice.top();
            for &k in consts {
                let kd = DerivedVar::new(k);
                let ke = match lattice.element_sym(k.name()) {
                    Some(e) => e,
                    None => continue,
                };
                if accepts(g, &kd, &dv) {
                    lower = lattice.join(lower, ke);
                }
                if accepts(g, &dv, &kd) {
                    upper = lattice.meet(upper, ke);
                }
            }
            let conflicted =
                lower != lattice.bottom() && upper != lattice.top() && !lattice.leq(lower, upper);
            let mark = if conflicted {
                // Inconsistent interval: signal ⊥ so the C-type conversion
                // applies the union policy (Example 4.2).
                lattice.bottom()
            } else {
                match variance {
                    Variance::Covariant if lower != lattice.bottom() => lower,
                    Variance::Covariant if upper != lattice.top() => upper,
                    Variance::Contravariant if upper != lattice.top() => upper,
                    Variance::Contravariant if lower != lattice.bottom() => lower,
                    _ => lattice.top(),
                }
            };
            node.mark = mark;
            node.lower = lower;
            node.upper = upper;
        }
        Some(Sketch { nodes, root: 0 })
    }

    /// Meet (`⊓`): language union, marks combined by variance
    /// (Figure 18).
    pub fn meet(&self, other: &Sketch, lattice: &Lattice) -> Sketch {
        self.combine(other, lattice, true)
    }

    /// Join (`⊔`): language intersection, marks combined by variance
    /// (Figure 18).
    pub fn join(&self, other: &Sketch, lattice: &Lattice) -> Sketch {
        self.combine(other, lattice, false)
    }

    fn combine(&self, other: &Sketch, lattice: &Lattice, is_meet: bool) -> Sketch {
        type PState = (Option<SketchState>, Option<SketchState>, Variance);
        let mut index: FxHashMap<PState, SketchState> = FxHashMap::default();
        let mut nodes: Vec<Node> = Vec::new();
        let mut queue: VecDeque<PState> = VecDeque::new();
        let start = (Some(self.root), Some(other.root), Variance::Covariant);
        index.insert(start, 0);
        nodes.push(Node {
            mark: lattice.top(),
            lower: lattice.bottom(),
            upper: lattice.top(),
            edges: BTreeMap::new(),
        });
        queue.push_back(start);
        while let Some(st @ (a, b, v)) = queue.pop_front() {
            let sid = index[&st];
            // Mark (Figure 18).
            let blend = |xa: Option<LatticeElem>, xb: Option<LatticeElem>| match (xa, xb) {
                (Some(ma), Some(mb)) => match (is_meet, v) {
                    (true, Variance::Covariant) | (false, Variance::Contravariant) => {
                        lattice.meet(ma, mb)
                    }
                    (true, Variance::Contravariant) | (false, Variance::Covariant) => {
                        lattice.join(ma, mb)
                    }
                },
                (Some(ma), None) => ma,
                (None, Some(mb)) => mb,
                (None, None) => unreachable!("product state with no sides"),
            };
            nodes[sid as usize].mark = blend(a.map(|s| self.mark(s)), b.map(|s| other.mark(s)));
            nodes[sid as usize].lower = blend(
                a.map(|s| self.nodes[s as usize].lower),
                b.map(|s| other.nodes[s as usize].lower),
            );
            nodes[sid as usize].upper = blend(
                a.map(|s| self.nodes[s as usize].upper),
                b.map(|s| other.nodes[s as usize].upper),
            );
            // Successor labels: union for meet, intersection for join.
            let mut labels: Vec<Label> = Vec::new();
            if let Some(s) = a {
                labels.extend(self.edges(s).map(|(l, _)| l));
            }
            if let Some(s) = b {
                labels.extend(other.edges(s).map(|(l, _)| l));
            }
            labels.sort();
            labels.dedup();
            for l in labels {
                let ta = a.and_then(|s| self.step(s, l));
                let tb = b.and_then(|s| other.step(s, l));
                let keep = if is_meet {
                    ta.is_some() || tb.is_some()
                } else {
                    ta.is_some() && tb.is_some()
                };
                if !keep {
                    continue;
                }
                let nv = v * l.variance();
                let key = (ta, tb, nv);
                let tid = match index.get(&key) {
                    Some(&t) => t,
                    None => {
                        let t = nodes.len() as SketchState;
                        index.insert(key, t);
                        nodes.push(Node {
                            mark: lattice.top(),
                            lower: lattice.bottom(),
                            upper: lattice.top(),
                            edges: BTreeMap::new(),
                        });
                        queue.push_back(key);
                        t
                    }
                };
                nodes[sid as usize].edges.insert(l, tid);
            }
        }
        Sketch { nodes, root: 0 }
    }

    /// The partial order `X ⊑ Y` on sketches: `L(Y) ⊆ L(X)` and for every
    /// word `w ∈ L(Y)`, the marks satisfy `νX(w) ≤ νY(w)` at covariant `w`
    /// and `νY(w) ≤ νX(w)` at contravariant `w`.
    pub fn leq(&self, other: &Sketch, lattice: &Lattice) -> bool {
        // Walk the product over other's language.
        let mut seen: FxHashMap<(SketchState, SketchState, Variance), ()> = FxHashMap::default();
        let mut queue: VecDeque<(SketchState, SketchState, Variance)> = VecDeque::new();
        queue.push_back((self.root, other.root, Variance::Covariant));
        seen.insert((self.root, other.root, Variance::Covariant), ());
        while let Some((a, b, v)) = queue.pop_front() {
            let (ma, mb) = (self.mark(a), other.mark(b));
            let ok = match v {
                Variance::Covariant => lattice.leq(ma, mb),
                Variance::Contravariant => lattice.leq(mb, ma),
            };
            if !ok {
                return false;
            }
            for (l, tb) in other.edges(b) {
                match self.step(a, l) {
                    None => return false, // L(other) ⊄ L(self)
                    Some(ta) => {
                        let key = (ta, tb, v * l.variance());
                        if seen.insert(key, ()).is_none() {
                            queue.push_back(key);
                        }
                    }
                }
            }
        }
        true
    }

    /// Structural equality up to bisimulation (language and marks).
    pub fn equivalent(&self, other: &Sketch, lattice: &Lattice) -> bool {
        self.leq(other, lattice) && other.leq(self, lattice)
    }

    /// Renders the sketch with one state per line (cyclic references shown
    /// by state number).
    pub fn render(&self, lattice: &Lattice) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (i, n) in self.nodes.iter().enumerate() {
            let _ = write!(out, "%{i}: {}", lattice.name(n.mark));
            for (l, t) in &n.edges {
                let _ = write!(out, "  .{l} → %{t}");
            }
            let _ = writeln!(out);
        }
        out
    }
}

impl fmt::Display for Sketch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, n) in self.nodes.iter().enumerate() {
            write!(f, "%{i}:")?;
            for (l, t) in &n.edges {
                write!(f, " .{l}→%{t}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_constraint_set;
    use crate::saturation::saturate;

    fn infer(src: &str, base: &str) -> (Sketch, Lattice) {
        let cs = parse_constraint_set(src).unwrap();
        let lattice = Lattice::c_types();
        let mut g = ConstraintGraph::build(&cs);
        saturate(&mut g);
        let quotient = ShapeQuotient::build(&cs);
        let consts: Vec<BaseVar> = cs
            .base_vars()
            .into_iter()
            .filter(|b| b.is_const())
            .collect();
        let sk = Sketch::infer(BaseVar::var(base), &g, &quotient, &lattice, &consts)
            .expect("base has a class");
        (sk, lattice)
    }

    fn word(s: &str) -> Vec<Label> {
        crate::parse::parse_derived_var(&format!("x.{s}"))
            .unwrap()
            .path()
            .to_vec()
    }

    #[test]
    fn figure2_like_sketch() {
        // A linked-list handle reader (Figure 2 / Figure 16 shape).
        let src = "
            f.in_stack0 <= t
            t.load.σ32@0 <= t
            t.load.σ32@4 <= #FileDescriptor
        ";
        let (sk, lat) = infer(src, "f");
        assert!(sk.contains_word(&word("in_stack0.load.σ32@0")));
        assert!(sk.contains_word(&word("in_stack0.load.σ32@0.load.σ32@4")));
        // The recursive state folds back: deep words stay in the language.
        assert!(sk.contains_word(&word(
            "in_stack0.load.σ32@0.load.σ32@0.load.σ32@4"
        )));
        // The handle field is marked #FileDescriptor (an upper bound at a
        // contravariant-path... here ⟨in.load.σ⟩ = ⊖, so the mark joins the
        // lower bounds: the field type must be *at most* #FileDescriptor).
        let s = sk.walk(&word("in_stack0.load.σ32@4")).unwrap();
        let mark = sk.mark(s);
        assert_eq!(lat.name(mark), "#FileDescriptor");
    }

    #[test]
    fn no_store_capability_for_const_param() {
        let src = "f.in_stack0 <= p; p.load.σ32@0 <= int";
        let (sk, _) = infer(src, "f");
        assert!(sk.contains_word(&word("in_stack0.load")));
        assert!(!sk.contains_word(&word("in_stack0.store")));
    }

    #[test]
    fn meet_unions_languages() {
        let (a, lat) = infer("f.in_stack0 <= x; x.load <= int", "f");
        let (b, _) = infer("f.out_eax <= y; int <= f.out_eax", "f");
        let m = a.meet(&b, &lat);
        assert!(m.contains_word(&word("in_stack0.load")));
        assert!(m.contains_word(&word("out_eax")));
        // Meet is the lattice glb: m ⊑ a and m ⊑ b.
        assert!(m.leq(&a, &lat));
        assert!(m.leq(&b, &lat));
    }

    #[test]
    fn join_intersects_languages() {
        let (a, lat) = infer("f.in_stack0 <= x; f.out_eax <= y", "f");
        let (b, _) = infer("f.in_stack0 <= z", "f");
        let j = a.join(&b, &lat);
        assert!(j.contains_word(&word("in_stack0")));
        assert!(!j.contains_word(&word("out_eax")));
        assert!(a.leq(&j, &lat));
        assert!(b.leq(&j, &lat));
    }

    #[test]
    fn lattice_laws_on_sketches() {
        let (a, lat) = infer("f.in_stack0 <= x; x.load <= int", "f");
        let (b, _) = infer("f.in_stack0 <= z; int <= z.store", "f");
        let (c, _) = infer("f.out_eax <= w", "f");
        // Idempotence, commutativity, absorption (up to bisimulation).
        assert!(a.meet(&a, &lat).equivalent(&a, &lat));
        assert!(a.join(&a, &lat).equivalent(&a, &lat));
        assert!(a.meet(&b, &lat).equivalent(&b.meet(&a, &lat), &lat));
        assert!(a.join(&b, &lat).equivalent(&b.join(&a, &lat), &lat));
        assert!(a.meet(&a.join(&c, &lat), &lat).equivalent(&a, &lat));
        assert!(a.join(&a.meet(&c, &lat), &lat).equivalent(&a, &lat));
    }

    #[test]
    fn top_is_greatest() {
        let (a, lat) = infer("f.in_stack0 <= x; x.load <= int", "f");
        let top = Sketch::top(&lat);
        assert!(a.leq(&top, &lat));
        assert!(!top.leq(&a, &lat));
    }
}
