//! End-to-end benchmark harness: mini-C module → binary → constraints →
//! three tools → scores.

use std::time::{Duration, Instant};

use retypd_baselines::{infer_tie, infer_unification};
use retypd_core::solver::SolverStats;
use retypd_core::{Lattice, LatticeError, Solver};
use retypd_driver::{AnalysisDriver, LatticeSelector, ModuleJob, SolveRequest};
use retypd_minic::ast::Module;
use retypd_minic::codegen::compile;

use crate::front::convert_result;
use crate::metrics::{score, ToolMetrics};

/// Scores for every tool on one program.
#[derive(Clone, Copy, Debug, Default)]
pub struct ToolScores {
    /// Retypd (this paper).
    pub retypd: ToolMetrics,
    /// TIE-style subtype bounds baseline.
    pub tie: ToolMetrics,
    /// SecondWrite/REWARDS-style unification baseline.
    pub unification: ToolMetrics,
}

/// Result of evaluating one program.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Program name.
    pub name: String,
    /// Machine instruction count (the paper's size measure).
    pub instructions: usize,
    /// Per-tool metrics.
    pub scores: ToolScores,
    /// Wall-clock time of the Retypd solve.
    pub retypd_time: Duration,
    /// Solver size statistics (memory model input).
    pub stats: SolverStats,
}

/// The shared evaluation body, parameterized by how the Retypd side is
/// solved (sequential solver or parallel driver) so the two entry points
/// cannot drift apart.
fn evaluate_with(
    name: &str,
    module: &Module,
    lattice: &Lattice,
    solve: impl FnOnce(&retypd_core::Program) -> retypd_core::SolverResult,
) -> BenchResult {
    let (mir, truth) = compile(module).expect("benchmark module compiles");
    let instructions = mir.instruction_count();
    let program = retypd_congen::generate(&mir);

    let start = Instant::now();
    let solved = solve(&program);
    let retypd_time = start.elapsed();
    let stats = solved.stats;
    let retypd_inferred = convert_result(&solved, lattice);

    let tie_inferred = infer_tie(&program, lattice);
    let uni_inferred = infer_unification(&program, lattice);

    BenchResult {
        name: name.to_owned(),
        instructions,
        scores: ToolScores {
            retypd: score(lattice, &retypd_inferred, &truth),
            tie: score(lattice, &tie_inferred, &truth),
            unification: score(lattice, &uni_inferred, &truth),
        },
        retypd_time,
        stats,
    }
}

/// Runs only the Retypd pipeline, timed, with the given solve function.
fn time_with(
    module: &Module,
    solve: impl FnOnce(&retypd_core::Program) -> retypd_core::SolverResult,
) -> (usize, Duration, SolverStats) {
    let (mir, _) = compile(module).expect("benchmark module compiles");
    let instructions = mir.instruction_count();
    let program = retypd_congen::generate(&mir);
    let start = Instant::now();
    let solved = solve(&program);
    let t = start.elapsed();
    (instructions, t, solved.stats)
}

/// Compiles and evaluates one module with all three tools.
///
/// # Panics
///
/// Panics if the module fails to compile — generated benchmark modules are
/// well-typed by construction.
pub fn evaluate_module(name: &str, module: &Module, lattice: &Lattice) -> BenchResult {
    evaluate_with(name, module, lattice, |p| Solver::new(lattice).infer(p))
}

/// Runs only the Retypd pipeline, timed (for the scaling figures).
pub fn time_retypd(module: &Module, lattice: &Lattice) -> (usize, Duration, SolverStats) {
    time_with(module, |p| Solver::new(lattice).infer(p))
}

/// Runs the Retypd pipeline through the parallel SCC-wave driver instead of
/// the sequential solver. The returned stats carry the driver's
/// `solve_ns`/`cache_hits`/`cache_misses` counters, making driver runs
/// directly comparable to sequential entries in the committed
/// `BENCH_*.json` trajectories; the schemes themselves are bit-identical by
/// the driver's determinism guarantee. The driver's cache persists across
/// calls, so repeated evaluation of related modules exercises the
/// incremental path.
pub fn time_retypd_driver(
    module: &Module,
    driver: &AnalysisDriver<'_>,
) -> (usize, Duration, SolverStats) {
    time_with(module, |p| driver.solve(p))
}

/// Compiles and evaluates one module with all three tools, solving the
/// Retypd side through the parallel driver (scores must match
/// [`evaluate_module`]; timing/cache counters come from the driver).
pub fn evaluate_module_driver(
    name: &str,
    module: &Module,
    lattice: &Lattice,
    driver: &AnalysisDriver<'_>,
) -> BenchResult {
    evaluate_with(name, module, lattice, |p| driver.solve(p))
}

/// Evaluates one module through the driver's request/session API against
/// an arbitrary lattice — the evaluation-side mirror of the serving
/// stack's per-request lattices. Scores are computed against the *session*
/// lattice (distances and conservativeness are lattice-relative), and the
/// solve shares the driver's cache, segregated by lattice fingerprint.
///
/// # Errors
///
/// Fails when a [`LatticeSelector::Descriptor`] does not describe a valid
/// lattice.
pub fn evaluate_module_in(
    name: &str,
    module: &Module,
    driver: &AnalysisDriver<'_>,
    lattice: LatticeSelector,
) -> Result<BenchResult, LatticeError> {
    // Resolve (and validate) the lattice once for scoring; the per-program
    // solve below re-uses the driver's memo, so this costs one build at
    // most.
    let scoring_lattice = driver
        .session(SolveRequest::batch(&[]).with_lattice(lattice.clone()))?
        .lattice()
        .clone();
    Ok(evaluate_with(name, module, &scoring_lattice, |p| {
        let jobs = [ModuleJob {
            name: name.to_owned(),
            program: p.clone(),
        }];
        driver
            .session(SolveRequest::batch(&jobs).with_lattice(lattice))
            .expect("selector validated above")
            .run()
            .pop()
            .expect("one job in, one report out")
            .result
    }))
}

/// The estimated resident bytes of the solver structures (memory model for
/// Figure 12): graph nodes/edges, quotient nodes and sketch states have
/// known approximate footprints.
pub fn estimated_bytes(stats: &SolverStats) -> usize {
    stats.graph_nodes * 48 + stats.graph_edges * 24 + stats.quotient_nodes * 64
        + stats.sketch_states * 56
        + stats.constraints * 96
}

#[cfg(test)]
mod tests {
    use super::*;
    use retypd_minic::genprog::{GenConfig, ProgramGenerator};
    use retypd_minic::parse_module;

    #[test]
    fn evaluates_hand_written_program() {
        let src = "
            struct LL { struct LL* next; int handle; };
            int close_last(const struct LL* list) {
                while (list->next != 0) { list = list->next; }
                return close(list->handle);
            }
        ";
        let module = parse_module(src).unwrap();
        let lattice = Lattice::c_types();
        let r = evaluate_module("close_last", &module, &lattice);
        assert!(r.instructions > 5);
        assert!(r.scores.retypd.slots >= 2);
        // Retypd recovers the const param.
        assert!(
            r.scores.retypd.const_recall > 0.99,
            "const recall {}",
            r.scores.retypd.const_recall
        );
        // Retypd should not be worse than the baselines on distance here.
        assert!(
            r.scores.retypd.distance <= r.scores.unification.distance + 1e-9,
            "retypd {} vs unification {}",
            r.scores.retypd.distance,
            r.scores.unification.distance
        );
    }

    #[test]
    fn driver_harness_matches_sequential_scores() {
        let module = ProgramGenerator::new(GenConfig {
            seed: 17,
            functions: 8,
            ..GenConfig::default()
        })
        .generate();
        let lattice = Lattice::c_types();
        let seq = evaluate_module("gen17", &module, &lattice);
        let driver = AnalysisDriver::new(&lattice);
        let par = evaluate_module_driver("gen17", &module, &lattice, &driver);
        assert_eq!(par.scores.retypd.distance, seq.scores.retypd.distance);
        assert_eq!(
            par.scores.retypd.conservativeness,
            seq.scores.retypd.conservativeness
        );
        assert_eq!(par.stats.sketch_states, seq.stats.sketch_states);
        assert!(par.stats.solve_ns > 0 && seq.stats.solve_ns > 0);
        // Second evaluation of the same module is answered from the cache.
        let again = evaluate_module_driver("gen17", &module, &lattice, &driver);
        assert_eq!(again.stats.cache_misses, 0);
        assert!(again.stats.cache_hits > 0);
    }

    #[test]
    fn session_harness_matches_driver_scores_and_segregates_lattices() {
        let module = ProgramGenerator::new(GenConfig {
            seed: 17,
            functions: 6,
            ..GenConfig::default()
        })
        .generate();
        let lattice = Lattice::c_types();
        let driver = AnalysisDriver::new(&lattice);
        let default_scores = evaluate_module_driver("gen17", &module, &lattice, &driver);
        let via_session =
            evaluate_module_in("gen17", &module, &driver, LatticeSelector::Default)
                .expect("default resolves");
        assert_eq!(
            via_session.scores.retypd.distance,
            default_scores.scores.retypd.distance
        );
        assert_eq!(
            via_session.stats.sketch_states,
            default_scores.stats.sketch_states
        );
        // Same evaluation under a described copy of c_types converges to
        // the same cache (canonical fingerprints), so it is a pure hit.
        let descr = lattice.descriptor().clone();
        let warm = evaluate_module_in(
            "gen17",
            &module,
            &driver,
            LatticeSelector::Descriptor(descr),
        )
        .expect("canonical descriptor builds");
        assert_eq!(warm.stats.cache_misses, 0);
        assert!(warm.stats.cache_hits > 0);
    }

    #[test]
    fn evaluates_generated_program() {
        let module = ProgramGenerator::new(GenConfig {
            seed: 3,
            functions: 10,
            ..GenConfig::default()
        })
        .generate();
        let lattice = Lattice::c_types();
        let r = evaluate_module("gen3", &module, &lattice);
        assert!(r.scores.retypd.slots > 5);
        assert!(r.scores.retypd.conservativeness > 0.5);
    }
}
