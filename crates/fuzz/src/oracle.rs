//! The crash/hang/liveness oracles every mutant runs under.
//!
//! * **In-process** ([`check_in_process`], [`check_grammar_strings`],
//!   [`check_gateway_reply`]): the exact decode path a connection handler
//!   runs (`serve::json` + `Request::decode`), the
//!   [`retypd_core::fuzzing`] parser checkers, and the gateway's backend
//!   stats-reply classifier, under `catch_unwind` and a wall-clock
//!   budget.
//! * **Socket** ([`SocketOracle`]): delivery to a live server. Raw-tier
//!   inputs get a fresh connection each (write, half-close, read to EOF —
//!   the half-close means a truncated frame is an immediate `Broken` at
//!   the server instead of a read-timeout wait); framed payloads reuse a
//!   persistent connection and must draw a reply before any close. Either
//!   way, exceeding the deadline is a **hang** failure — the one thing a
//!   robust server must never do.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

use retypd_core::fuzzing::{check_constraint_set, check_derived_var, check_lattice_descriptor};
use retypd_serve::json::Json;
use retypd_serve::wire;
use retypd_serve::{Client, Request, Response};

/// An oracle violation. Everything carries enough context to reproduce:
/// the harness is deterministic, so (seed, iteration) pins the input.
#[derive(Clone, Debug)]
pub enum Failure {
    /// A parser or decoder panicked (in-process `catch_unwind`).
    Panic {
        /// The panic payload.
        what: String,
        /// Which check was running.
        context: String,
    },
    /// An input exceeded its wall-clock budget.
    Hang {
        /// Which check was running.
        context: String,
        /// Observed wall clock.
        elapsed_ms: u64,
    },
    /// The server closed a connection without replying to a complete,
    /// well-framed request frame.
    NoReply {
        /// Which check was running.
        context: String,
    },
    /// The server sent bytes that do not decode as a response frame.
    BadReply {
        /// Decode error text.
        what: String,
        /// Which check was running.
        context: String,
    },
    /// Live heap growth exceeded the harness bound.
    MemoryGrowth {
        /// Bytes of live-heap growth since the baseline.
        grew_bytes: usize,
        /// Where in the run the bound tripped.
        context: String,
    },
    /// The liveness probe could not reach the server at all — a crashed
    /// acceptor or a wedged accept loop.
    ServerDown {
        /// Connect/probe error text.
        what: String,
        /// Which check was running.
        context: String,
    },
}

impl Failure {
    /// Stable kind tag for stats output.
    pub fn kind(&self) -> &'static str {
        match self {
            Failure::Panic { .. } => "panic",
            Failure::Hang { .. } => "hang",
            Failure::NoReply { .. } => "no_reply",
            Failure::BadReply { .. } => "bad_reply",
            Failure::MemoryGrowth { .. } => "memory_growth",
            Failure::ServerDown { .. } => "server_down",
        }
    }

    /// One-line human description.
    pub fn describe(&self) -> String {
        match self {
            Failure::Panic { what, context } => format!("panic in {context}: {what}"),
            Failure::Hang {
                context,
                elapsed_ms,
            } => format!("hang in {context}: {elapsed_ms}ms"),
            Failure::NoReply { context } => format!("no reply in {context}"),
            Failure::BadReply { what, context } => format!("bad reply in {context}: {what}"),
            Failure::MemoryGrowth {
                grew_bytes,
                context,
            } => format!("live heap grew {grew_bytes} bytes ({context})"),
            Failure::ServerDown { what, context } => format!("server down in {context}: {what}"),
        }
    }
}

fn panic_text(p: Box<dyn std::any::Any + Send>) -> String {
    p.downcast_ref::<&str>()
        .map(|s| (*s).to_owned())
        .or_else(|| p.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_owned())
}

/// Runs `f` under `catch_unwind` and a wall-clock budget.
fn guarded(context: &str, budget: Duration, f: impl FnOnce()) -> Result<(), Failure> {
    let start = Instant::now();
    let result = catch_unwind(AssertUnwindSafe(f));
    let elapsed = start.elapsed();
    match result {
        Err(p) => Err(Failure::Panic {
            what: panic_text(p),
            context: context.to_owned(),
        }),
        Ok(()) if elapsed > budget => Err(Failure::Hang {
            context: context.to_owned(),
            elapsed_ms: elapsed.as_millis() as u64,
        }),
        Ok(()) => Ok(()),
    }
}

/// The in-process decode path: `serve::json` on the payload text (when it
/// is UTF-8) and the full `Request::decode`. Returns whether the payload
/// decoded as a request, for valid-ratio accounting.
///
/// # Errors
///
/// A [`Failure`] when the decode path panics or exceeds `budget`.
pub fn check_in_process(payload: &[u8], budget: Duration) -> Result<bool, Failure> {
    let mut decoded = false;
    guarded("in-process decode", budget, || {
        if let Ok(text) = std::str::from_utf8(payload) {
            let _ = Json::parse(text);
        }
        decoded = Request::decode(payload).is_ok();
    })?;
    Ok(decoded)
}

/// Drives the core parser checkers over tier-C grammar strings: the
/// parsers must not panic, and anything they accept must survive the
/// display/reparse round trip (the checkers panic on violations, which
/// `catch_unwind` converts into [`Failure::Panic`]).
///
/// # Errors
///
/// A [`Failure`] when a checker panics or exceeds `budget`.
pub fn check_grammar_strings(strings: &[String], budget: Duration) -> Result<(), Failure> {
    for s in strings {
        guarded("core parser checkers", budget, || {
            check_derived_var(s);
            check_constraint_set(s);
            check_lattice_descriptor(s);
        })?;
    }
    Ok(())
}

/// Drives a (mutated) backend `stats` reply through the gateway's health-
/// probe classifier. The router's contract: a malformed reply degrades
/// the backend to unhealthy — it must never panic the gateway. Returns
/// whether the reply still classified healthy, for accounting.
///
/// # Errors
///
/// A [`Failure`] when the classifier panics or exceeds `budget`.
pub fn check_gateway_reply(payload: &[u8], budget: Duration) -> Result<bool, Failure> {
    let mut healthy = false;
    guarded("gateway stats-reply classifier", budget, || {
        healthy = retypd_gateway::classify_stats_reply(payload).is_ok();
    })?;
    Ok(healthy)
}

/// Socket-side delivery and its reply-or-clean-close / no-hang oracle.
pub struct SocketOracle {
    addr: SocketAddr,
    /// Per-interaction wall-clock bound; exceeding it is a hang failure.
    deadline: Duration,
    /// Reused connection for framed (tier B/C) payloads; dropped and
    /// re-dialed whenever the server closes it.
    persistent: Option<TcpStream>,
}

impl SocketOracle {
    /// An oracle talking to the server at `addr`.
    pub fn new(addr: SocketAddr, deadline: Duration) -> SocketOracle {
        SocketOracle {
            addr,
            deadline,
            persistent: None,
        }
    }

    fn connect(&self) -> Result<TcpStream, Failure> {
        let s = TcpStream::connect_timeout(&self.addr.clone(), self.deadline).map_err(|e| {
            Failure::ServerDown {
                what: e.to_string(),
                context: "connect".into(),
            }
        })?;
        s.set_nodelay(true).ok();
        // The deadline bounds every blocking read/write: a hang surfaces
        // as a timeout error instead of pinning the harness.
        s.set_read_timeout(Some(self.deadline)).ok();
        s.set_write_timeout(Some(self.deadline)).ok();
        Ok(s)
    }

    /// Tier-A delivery: fresh connection, write the raw wire bytes
    /// verbatim, half-close, then read whatever comes back until EOF.
    /// *Any* reply byte sequence followed by a close satisfies the oracle
    /// — raw mutants include truncated and desynchronized frames where
    /// silence is the correct answer — but the read must finish inside
    /// the deadline. Returns the reply bytes.
    ///
    /// # Errors
    ///
    /// [`Failure::Hang`] past the deadline, [`Failure::ServerDown`] when
    /// the server cannot be reached.
    pub fn deliver_raw(&mut self, bytes: &[u8], context: &str) -> Result<Vec<u8>, Failure> {
        let mut s = self.connect()?;
        let start = Instant::now();
        // Write errors are expected: the server may refuse the frame and
        // close while we are still sending (e.g. over-cap announcements).
        let _ = s.write_all(bytes);
        let _ = s.shutdown(Shutdown::Write);
        let mut reply = Vec::new();
        let mut buf = [0u8; 8192];
        loop {
            if start.elapsed() > self.deadline {
                return Err(Failure::Hang {
                    context: context.to_owned(),
                    elapsed_ms: start.elapsed().as_millis() as u64,
                });
            }
            match s.read(&mut buf) {
                Ok(0) => return Ok(reply),
                Ok(n) => reply.extend_from_slice(&buf[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Err(Failure::Hang {
                        context: context.to_owned(),
                        elapsed_ms: start.elapsed().as_millis() as u64,
                    });
                }
                // A reset after the server refused the frame still counts
                // as a close.
                Err(_) => return Ok(reply),
            }
        }
    }

    /// Tier-B/C delivery: the payload goes out as one well-formed frame on
    /// a persistent connection, and a complete frame must always draw a
    /// reply (or a refusal) before any close. Streaming batches are read
    /// through to their terminal frame. Returns how many reply frames
    /// arrived.
    ///
    /// # Errors
    ///
    /// [`Failure::Hang`] past the deadline, [`Failure::NoReply`] when the
    /// server closes without answering, [`Failure::BadReply`] when a reply
    /// frame does not decode, [`Failure::ServerDown`] when the server is
    /// unreachable.
    pub fn deliver_framed(&mut self, payload: &[u8], context: &str) -> Result<usize, Failure> {
        // Predict the reply shape with the same decoder the server runs:
        // a streaming batch answers with report frames then a terminal
        // frame; everything else (including a decode error) is one frame.
        let streaming = matches!(
            Request::decode(payload),
            Ok(Request::SolveBatch { stream: true, .. })
        );
        // The previous mutant may have made the server close this
        // connection (budget refusals, oversized frames); one reconnect
        // retry distinguishes that from a dead server.
        for attempt in 0..2 {
            if self.persistent.is_none() {
                self.persistent = Some(self.connect()?);
            }
            let s = self.persistent.as_mut().expect("just connected");
            if wire::write_frame(s, payload).is_err() {
                self.persistent = None;
                if attempt == 0 {
                    continue;
                }
                return Err(Failure::ServerDown {
                    what: "write failed on a fresh connection".into(),
                    context: context.to_owned(),
                });
            }
            return match Self::read_replies(s, streaming, self.deadline, context) {
                Ok(n) => Ok(n),
                Err(failure) => {
                    // Desynchronized or closed: next framed mutant dials
                    // fresh either way.
                    self.persistent = None;
                    // EOF-without-reply right after a successful write can
                    // still be the *previous* mutant's close racing us; a
                    // single retry on a fresh connection settles it.
                    if attempt == 0 && matches!(failure, Failure::NoReply { .. }) {
                        continue;
                    }
                    Err(failure)
                }
            };
        }
        unreachable!("loop returns on every path by attempt 1")
    }

    fn read_replies(
        s: &mut TcpStream,
        streaming: bool,
        deadline: Duration,
        context: &str,
    ) -> Result<usize, Failure> {
        let start = Instant::now();
        let mut frames = 0usize;
        loop {
            if start.elapsed() > deadline {
                return Err(Failure::Hang {
                    context: context.to_owned(),
                    elapsed_ms: start.elapsed().as_millis() as u64,
                });
            }
            let frame = match wire::read_frame(s) {
                Ok(Some(f)) => f,
                Ok(None) => {
                    return if frames == 0 {
                        Err(Failure::NoReply {
                            context: context.to_owned(),
                        })
                    } else {
                        // Close after at least one reply: a refusal frame
                        // (budget, timeout) legitimately ends this way.
                        Ok(frames)
                    };
                }
                Err(wire::WireError::Io(e))
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Err(Failure::Hang {
                        context: context.to_owned(),
                        elapsed_ms: start.elapsed().as_millis() as u64,
                    });
                }
                Err(_) => {
                    // Reset or mid-frame close: a violation only if the
                    // frame drew no reply at all (a refusal frame followed
                    // by a hard close is within contract).
                    return if frames == 0 {
                        Err(Failure::NoReply {
                            context: context.to_owned(),
                        })
                    } else {
                        Ok(frames)
                    };
                }
            };
            let resp = Response::decode(&frame).map_err(|e| Failure::BadReply {
                what: e.to_string(),
                context: context.to_owned(),
            })?;
            frames += 1;
            match resp {
                // Streaming replies continue until a terminal frame.
                Response::Report { .. } if streaming => {}
                _ => return Ok(frames),
            }
        }
    }

    /// Liveness probe: a fresh connection must still get a `stats` answer.
    ///
    /// # Errors
    ///
    /// [`Failure::ServerDown`] when the probe fails.
    pub fn probe(&self, context: &str) -> Result<(), Failure> {
        let mut client = Client::connect(self.addr).map_err(|e| Failure::ServerDown {
            what: e.to_string(),
            context: context.to_owned(),
        })?;
        client.stats().map(|_| ()).map_err(|e| Failure::ServerDown {
            what: e.to_string(),
            context: context.to_owned(),
        })
    }
}
