//! A dense visited set over `0..len` (one bit per state).
//!
//! The saturated graph's query loops (transducer walks, phase
//! reachability) are hot enough that hashing tuple states dominates; a
//! bitset makes membership a shift and a mask. Callers encode their state
//! tuples into a dense index themselves.

/// A fixed-capacity bitset with insert-returns-fresh semantics.
pub struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// An empty set with capacity for indices `0..len`.
    pub fn new(len: usize) -> BitSet {
        BitSet {
            words: vec![0; len.div_ceil(64)],
        }
    }

    /// Inserts `i`; returns true if it was absent.
    pub fn insert(&mut self, i: usize) -> bool {
        let (w, b) = (i / 64, 1u64 << (i % 64));
        let absent = self.words[w] & b == 0;
        self.words[w] |= b;
        absent
    }

    /// True if `i` is present.
    pub fn contains(&self, i: usize) -> bool {
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_reports_freshness() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(!s.insert(0));
        assert!(s.insert(129));
        assert!(s.contains(129));
        assert!(!s.contains(64));
    }
}
