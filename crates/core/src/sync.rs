//! The workspace concurrency facade: `std::sync`-compatible primitives
//! that become **model-checked doubles** under `--cfg retypd_model_check`.
//!
//! Product code imports its synchronization from here (or, below
//! `retypd-core` in the dependency order, from `loom::sync` directly)
//! instead of `std::sync`/`std::thread`. In a normal build every item
//! is a plain re-export of the std type — zero cost, same `TypeId`, no
//! behavioral change. Under `--cfg retypd_model_check` the same paths
//! resolve to the vendored mini-loom doubles, so `crates/conc-check`
//! can explore the *actual production code* under a bounded
//! model-checking scheduler (seeded DFS over interleavings, vector-clock
//! happens-before, replayable failure schedules). The `retypd-lint`
//! binary enforces the routing: raw `std::sync::atomic`/`std::thread`
//! imports outside this facade are build failures in CI.
//!
//! # Memory-ordering policy
//!
//! The workspace's lock-free code sticks to a small vocabulary; every
//! site outside it needs a justifying comment (enforced by
//! `retypd-lint`):
//!
//! * **`Relaxed`** — the default for *values that are read for their
//!   own sake only*: monotonic counters and gauges (telemetry), cache
//!   hit/miss tallies, statistics cells, generation numbers checked
//!   under a lock. Nothing may be inferred about *other* memory from a
//!   relaxed read, and no such site does.
//! * **`Release`/`Acquire`** — the publication pattern: a writer
//!   prepares data, then `Release`-stores a flag/pointer/epoch; readers
//!   `Acquire`-load it before touching the data. Used for shutdown
//!   flags that gate "the drain is complete" observations, snapshot
//!   epochs, and once-initialization (`OnceLock` internally).
//! * **`AcqRel`** — RMWs that both claim and publish, e.g. an admission
//!   slot CAS that must see the releaser's writes and publish its own.
//! * **`SeqCst`** — only where a *total order across two or more
//!   locations* is load-bearing (flag A then flag B read by observers
//!   in both orders must agree). Each surviving site carries a
//!   `// WHY-SEQCST:` comment stating that two-location invariant; the
//!   lint rejects unannotated ones. PR 10 audited every `SeqCst` in the
//!   tree and downgraded those that were merely "default paranoia".
//!
//! The model checker is the enforcement teeth behind the policy: its
//! relaxed loads really do return stale values, so an under-ordered
//! publication (`Relaxed` where `Release` was needed) fails a
//! `conc-check` model with a replayable schedule instead of surviving
//! until a production repro on weakly-ordered hardware.
//!
//! # What is deliberately *not* modeled
//!
//! `std::thread::scope` (borrowed spawns) and `park`/`unpark` have no
//! doubles; the few call sites keep raw `std::thread` with an explicit
//! `retypd-lint: allow(no-raw-thread)` waiver. `mpsc` channels pass
//! through unmodeled — model code expresses handoffs with the modeled
//! `Mutex`/`Condvar` instead.

pub use loom::sync::*;

/// The facade `std::sync::atomic` (modeled under
/// `--cfg retypd_model_check`; see the [module docs](self) for the
/// workspace memory-ordering policy).
pub mod atomic {
    pub use loom::sync::atomic::*;
}

/// The facade `std::thread`: spawn/join/yield/sleep route through the
/// model under `--cfg retypd_model_check`; everything else passes
/// through to std.
pub mod thread {
    pub use loom::thread::*;
}

#[cfg(test)]
mod tests {
    /// In a normal build the facade must be a zero-cost re-export: the
    /// *same types* as std, not lookalikes.
    #[cfg(not(retypd_model_check))]
    #[test]
    fn facade_is_std_in_normal_builds() {
        use std::any::TypeId;
        assert_eq!(
            TypeId::of::<super::Mutex<u64>>(),
            TypeId::of::<std::sync::Mutex<u64>>()
        );
        assert_eq!(
            TypeId::of::<super::atomic::AtomicU64>(),
            // retypd-lint: allow(no-raw-atomics) the zero-cost proof compares against std
            TypeId::of::<std::sync::atomic::AtomicU64>()
        );
        assert_eq!(
            TypeId::of::<super::RwLock<u32>>(),
            TypeId::of::<std::sync::RwLock<u32>>()
        );
        assert_eq!(
            TypeId::of::<super::OnceLock<u32>>(),
            TypeId::of::<std::sync::OnceLock<u32>>()
        );
    }
}
