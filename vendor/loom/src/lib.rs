//! Offline API-compatible stand-in for **loom**: a bounded model
//! checker for the workspace's concurrency facade.
//!
//! Like the other vendor shims, this crate exists so the build works
//! with no registry access; unlike most of them it is a full (small)
//! implementation, not a stub. It explores the interleavings of a
//! closure's model threads with a seeded DFS scheduler under a
//! preemption bound (CHESS-style), tracks happens-before with vector
//! clocks per the C11 release/acquire rules (relaxed loads really do
//! read stale values), and reports any failure — assertion panic, data
//! race on a [`modelled::cell::RaceCell`], deadlock, livelock — with a
//! **replayable schedule string**.
//!
//! # The two faces of this crate
//!
//! - [`modelled`] — the model-checked doubles themselves, *always*
//!   compiled. Checker self-tests and `conc-check` models use these
//!   explicitly; they degrade to the real std primitives when used
//!   outside [`model`]/[`Builder::check`].
//! - [`sync`] / [`thread`] / [`cell`] — the **facade** modules product
//!   code imports (normally via `retypd_core::sync`). In a normal
//!   build they are *re-exports of std* (zero cost, same types); under
//!   `--cfg retypd_model_check` they re-export the [`modelled`]
//!   doubles, so the exact production code paths become checkable.
//!
//! # Quick start
//!
//! ```
//! use loom::modelled::sync::atomic::{AtomicU64, Ordering};
//! use loom::modelled::thread;
//! use std::sync::Arc;
//!
//! loom::model(|| {
//!     let n = Arc::new(AtomicU64::new(0));
//!     let n2 = Arc::clone(&n);
//!     let t = thread::spawn(move || n2.fetch_add(1, Ordering::Relaxed));
//!     n.fetch_add(1, Ordering::Relaxed);
//!     t.join().unwrap();
//!     assert_eq!(n.load(Ordering::Relaxed), 2);
//! });
//! ```
//!
//! To *replay* a reported schedule, paste the string from the failure
//! message into [`Builder::replay`] with the same closure.
//!
//! # Bounds and simplifications (vs. real loom / CDSChecker)
//!
//! - Preemption-bounded, not exhaustive: schedules with more than
//!   `preemption_bound` involuntary context switches are not explored
//!   (empirically, small bounds catch most real bugs). `max_iterations`
//!   additionally caps the run count; [`Report::complete`] says whether
//!   the bounded space was exhausted.
//! - SeqCst is simplified to "reads the newest store + full
//!   release/acquire": the modification order doubles as the SC order.
//!   Independent-reads-of-independent-writes distinctions beyond that
//!   are not modeled.
//! - Stores join the modification order in execution order; fences are
//!   modeled coarsely through one global clock.
//! - At most [`MAX_THREADS`](clock::MAX_THREADS) threads per model.
//! - Model executions must be deterministic given the schedule: no
//!   wall-clock time, real I/O, or non-model threading inside a model.

#![warn(missing_docs)]

pub mod clock;
mod rt;

mod atomics;
mod cell_model;
mod sync_model;
mod thread_model;

/// The model-checked doubles, always available (self-tests and
/// `conc-check` models use them without any `--cfg`).
pub mod modelled {
    /// Doubles of `std::sync` (plus passthroughs for unmodeled items).
    pub mod sync {
        pub use crate::sync_model::{
            Condvar, Mutex, MutexGuard, OnceLock, RwLock, RwLockReadGuard, RwLockWriteGuard,
            WaitTimeoutResult,
        };
        // Unmodeled passthroughs: ownership/refcounting (`Arc`) carries
        // no schedule-relevant blocking; `mpsc` is unmodeled (models
        // should express channels with modeled Mutex/Condvar instead).
        pub use std::sync::{mpsc, Arc, Barrier, LockResult, Once, PoisonError, TryLockError, TryLockResult, Weak};

        /// Doubles of `std::sync::atomic`.
        pub mod atomic {
            pub use crate::atomics::{
                compiler_fence, fence, AtomicBool, AtomicI32, AtomicI64, AtomicU32, AtomicU64,
                AtomicUsize,
            };
            pub use std::sync::atomic::Ordering;
        }
    }

    /// Doubles of `std::thread` (spawn/join/yield/sleep).
    pub mod thread {
        pub use crate::thread_model::{sleep, spawn, yield_now, Builder, JoinHandle};
        pub use std::thread::{available_parallelism, current, panicking, Result, Thread, ThreadId};
    }

    /// The race-checked data cell.
    pub mod cell {
        pub use crate::cell_model::RaceCell;
    }
}

/// The facade `std::sync`: plain std re-exports in normal builds.
#[cfg(not(retypd_model_check))]
pub mod sync {
    pub use std::sync::{
        mpsc, Arc, Barrier, Condvar, LockResult, Mutex, MutexGuard, Once, OnceLock, PoisonError,
        RwLock, RwLockReadGuard, RwLockWriteGuard, TryLockError, TryLockResult, WaitTimeoutResult,
        Weak,
    };

    /// The facade `std::sync::atomic`: plain std re-exports.
    pub mod atomic {
        pub use std::sync::atomic::{
            compiler_fence, fence, AtomicBool, AtomicI32, AtomicI64, AtomicU32, AtomicU64,
            AtomicUsize, Ordering,
        };
    }
}

/// The facade `std::sync`: model-checked doubles under
/// `--cfg retypd_model_check`.
#[cfg(retypd_model_check)]
pub mod sync {
    pub use crate::modelled::sync::*;
}

/// The facade `std::thread`: plain std re-exports in normal builds.
#[cfg(not(retypd_model_check))]
pub mod thread {
    pub use std::thread::{
        available_parallelism, current, panicking, sleep, spawn, yield_now, Builder, JoinHandle,
        Result, Thread, ThreadId,
    };
}

/// The facade `std::thread`: model-checked doubles under
/// `--cfg retypd_model_check`.
#[cfg(retypd_model_check)]
pub mod thread {
    pub use crate::modelled::thread::*;
}

/// The facade cell module ([`modelled::cell::RaceCell`] degrades to a
/// raw `UnsafeCell` outside model executions, so no cfg switch is
/// needed).
pub mod cell {
    pub use crate::cell_model::RaceCell;
}

/// A failure found by the checker, with the schedule that reproduces
/// it (feed it to [`Builder::replay`]).
#[derive(Clone, Debug)]
pub struct Failure {
    /// What went wrong (panic message, race description, deadlock…).
    pub message: String,
    /// Replayable schedule string, e.g. `"s1-p2:0.2.1"`.
    pub schedule: String,
}

/// The result of a [`Builder::check`] exploration.
#[derive(Clone, Debug)]
pub struct Report {
    /// Distinct interleavings executed (every DFS iteration flips at
    /// least one recorded choice, so each run is a distinct schedule).
    pub iterations: u64,
    /// Whether the bounded schedule space was exhausted (false when
    /// `max_iterations` stopped the search, or on failure).
    pub complete: bool,
    /// The first failure found, if any (the search stops on it).
    pub failure: Option<Failure>,
}

/// Exploration configuration; construct with [`Builder::new`], adjust
/// with the chainable setters, run with [`Builder::check`].
#[derive(Clone, Copy, Debug)]
pub struct Builder {
    /// Seed for the deterministic permutation of choice orders (which
    /// alternative schedules are tried first). Same seed + same model
    /// ⇒ bit-identical exploration.
    pub seed: u64,
    /// Maximum involuntary context switches per execution.
    pub preemption_bound: u32,
    /// Cap on explored interleavings.
    pub max_iterations: u64,
    /// Per-execution step budget (livelock guard).
    pub max_steps: u64,
}

impl Default for Builder {
    fn default() -> Self {
        Builder {
            seed: 1,
            preemption_bound: 2,
            max_iterations: 20_000,
            max_steps: 100_000,
        }
    }
}

fn schedule_string(seed: u64, bound: u32, trace: &[rt::Choice]) -> String {
    let mut s = format!("s{seed}-p{bound}:");
    for (i, c) in trace.iter().enumerate() {
        if i > 0 {
            s.push('.');
        }
        s.push_str(&c.chosen.to_string());
    }
    s
}

fn parse_schedule(s: &str) -> Option<(u64, u32, Vec<u32>)> {
    let rest = s.strip_prefix('s')?;
    let (seed, rest) = rest.split_once("-p")?;
    let (bound, choices) = rest.split_once(':')?;
    let seed = seed.parse().ok()?;
    let bound = bound.parse().ok()?;
    let choices = if choices.is_empty() {
        Vec::new()
    } else {
        choices
            .split('.')
            .map(str::parse)
            .collect::<Result<Vec<u32>, _>>()
            .ok()?
    };
    Some((seed, bound, choices))
}

/// DFS backtracking: the deepest choice with an unexplored alternative
/// advances; everything above it replays, everything below explores
/// fresh. `None` when the bounded space is exhausted.
fn next_prefix(mut trace: Vec<rt::Choice>) -> Option<Vec<u32>> {
    while let Some(last) = trace.pop() {
        if last.chosen + 1 < last.available {
            let mut p: Vec<u32> = trace.iter().map(|c| c.chosen).collect();
            p.push(last.chosen + 1);
            return Some(p);
        }
    }
    None
}

impl Builder {
    /// A builder with the default bounds (seed 1, preemption bound 2).
    pub fn new() -> Builder {
        Builder::default()
    }

    /// Sets the exploration seed.
    pub fn seed(mut self, seed: u64) -> Builder {
        self.seed = seed;
        self
    }

    /// Sets the preemption bound.
    pub fn preemption_bound(mut self, bound: u32) -> Builder {
        self.preemption_bound = bound;
        self
    }

    /// Sets the interleaving cap.
    pub fn max_iterations(mut self, n: u64) -> Builder {
        self.max_iterations = n;
        self
    }

    /// Sets the per-execution step budget.
    pub fn max_steps(mut self, n: u64) -> Builder {
        self.max_steps = n;
        self
    }

    /// Explores the model's interleavings, stopping at the first
    /// failure or when the bounded space (or iteration cap) is
    /// exhausted.
    pub fn check<F>(&self, f: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        let f: std::sync::Arc<dyn Fn() + Send + Sync> = std::sync::Arc::new(f);
        let cfg = rt::Cfg {
            seed: self.seed,
            preemption_bound: self.preemption_bound,
            max_steps: self.max_steps,
        };
        let mut prefix: Vec<u32> = Vec::new();
        let mut iterations = 0u64;
        loop {
            if rt::dbg_enabled() {
                eprintln!("[loom] prefix {prefix:?}");
            }
            let res = rt::run_once(cfg, prefix.clone(), std::sync::Arc::clone(&f));
            iterations += 1;
            if let Some(rf) = res.failure {
                return Report {
                    iterations,
                    complete: false,
                    failure: Some(Failure {
                        schedule: schedule_string(self.seed, self.preemption_bound, &rf.trace),
                        message: rf.message,
                    }),
                };
            }
            match next_prefix(res.trace) {
                Some(p) if iterations < self.max_iterations => prefix = p,
                Some(_) => {
                    return Report {
                        iterations,
                        complete: false,
                        failure: None,
                    }
                }
                None => {
                    return Report {
                        iterations,
                        complete: true,
                        failure: None,
                    }
                }
            }
        }
    }

    /// Replays exactly one schedule (from a [`Failure::schedule`]
    /// string) against the model; the string's seed and preemption
    /// bound override the builder's.
    pub fn replay<F>(&self, schedule: &str, f: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        let (seed, bound, prefix) = match parse_schedule(schedule) {
            Some(p) => p,
            None => {
                return Report {
                    iterations: 0,
                    complete: false,
                    failure: Some(Failure {
                        message: format!("unparseable schedule string: {schedule:?}"),
                        schedule: schedule.to_string(),
                    }),
                }
            }
        };
        let cfg = rt::Cfg {
            seed,
            preemption_bound: bound,
            max_steps: self.max_steps,
        };
        let f: std::sync::Arc<dyn Fn() + Send + Sync> = std::sync::Arc::new(f);
        let res = rt::run_once(cfg, prefix, f);
        Report {
            iterations: 1,
            complete: false,
            failure: res.failure.map(|rf| Failure {
                schedule: schedule_string(seed, bound, &rf.trace),
                message: rf.message,
            }),
        }
    }
}

/// Checks the model with default bounds, panicking (with the
/// replayable schedule in the message) if any explored interleaving
/// fails. The loom-compatible entry point for tests.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let report = Builder::new().check(f);
    if let Some(fail) = report.failure {
        panic!(
            "model check failed after {} interleavings: {}\n  replay with schedule {:?}",
            report.iterations, fail.message, fail.schedule
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_string_round_trips() {
        let trace = [
            rt::Choice {
                chosen: 0,
                available: 2,
            },
            rt::Choice {
                chosen: 3,
                available: 5,
            },
        ];
        let s = schedule_string(7, 2, &trace);
        assert_eq!(s, "s7-p2:0.3");
        assert_eq!(parse_schedule(&s), Some((7, 2, vec![0, 3])));
        assert_eq!(parse_schedule("s1-p2:"), Some((1, 2, vec![])));
        assert_eq!(parse_schedule("nonsense"), None);
    }

    #[test]
    fn next_prefix_walks_the_tree() {
        let c = |chosen, available| rt::Choice { chosen, available };
        assert_eq!(next_prefix(vec![c(0, 2), c(0, 3)]), Some(vec![0, 1]));
        assert_eq!(next_prefix(vec![c(0, 2), c(2, 3)]), Some(vec![1]));
        assert_eq!(next_prefix(vec![c(1, 2), c(2, 3)]), None);
        assert_eq!(next_prefix(vec![]), None);
    }
}
