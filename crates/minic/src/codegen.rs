//! The type-erasing code generator.
//!
//! Compiles a typechecked [`Module`] to [`retypd_mir`] machine code. Types
//! drive field offsets and access widths, then disappear. The generator
//! deliberately reproduces the §2.1 idiom catalog:
//!
//! * constant zeros compile to `xor eax, eax` (+ `push eax` for zero
//!   arguments) — semi-syntactic constants;
//! * local slots are reused across disjoint lexical scopes — stack-slot
//!   re-use;
//! * every `return` jumps to one shared epilogue, so a value in `eax` may
//!   flow from incompatible sources — fortuitous re-use;
//! * `fastcall` functions pass their first two parameters in `ecx`/`edx` —
//!   nonstandard register conventions (§2.5).

use std::collections::HashMap;
use std::fmt;

use retypd_mir::isa::{BinOp, Cond, Inst, Mem, Operand, Reg};
use retypd_mir::program::{CallKind, FuncId, Function, Program as MirProgram};

use crate::ast::{BinKind, CmpKind, Expr, FuncDef, Module, SrcType, Stmt};
use crate::truth::{FuncTruth, GroundTruth, ParamLoc, ParamTruth};

/// A compile-time error (ill-typed or unsupported source).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CompileError {
    message: String,
}

impl CompileError {
    fn new(m: impl Into<String>) -> CompileError {
        CompileError { message: m.into() }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "compile error: {}", self.message)
    }
}

impl std::error::Error for CompileError {}

/// Compiles a module, returning the machine program and its ground truth.
///
/// # Errors
///
/// Returns a [`CompileError`] on references to unknown variables, fields,
/// structs or functions, or on type errors that prevent layout decisions.
pub fn compile(module: &Module) -> Result<(MirProgram, GroundTruth), CompileError> {
    let mut mir = MirProgram::new();
    let mut truth = GroundTruth {
        module: module.clone(),
        funcs: Vec::new(),
    };
    // Pre-assign ids so direct calls can reference later functions.
    let ids: HashMap<String, FuncId> = module
        .funcs
        .iter()
        .enumerate()
        .map(|(i, f)| (f.name.clone(), FuncId(i)))
        .collect();
    for f in &module.funcs {
        let (code, ft) = FuncCompiler::new(module, &ids, f).run()?;
        mir.add(code);
        truth.funcs.push(ft);
    }
    Ok((mir, truth))
}

struct FuncCompiler<'a> {
    module: &'a Module,
    ids: &'a HashMap<String, FuncId>,
    f: &'a FuncDef,
    insts: Vec<Inst>,
    /// Variable environment: name → (location, type). Scoped.
    scopes: Vec<Vec<(String, VarSlot, SrcType)>>,
    /// Next free local slot offset (from ebp, negative), and high-water.
    next_local: i32,
    max_locals: i32,
    /// Free slots from closed scopes, for reuse (§2.1).
    free_slots: Vec<i32>,
    /// Jumps to the epilogue, patched at the end.
    epilogue_jumps: Vec<usize>,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum VarSlot {
    /// `[ebp + off]` (params positive, locals negative).
    Frame(i32),
}

impl<'a> FuncCompiler<'a> {
    fn new(module: &'a Module, ids: &'a HashMap<String, FuncId>, f: &'a FuncDef) -> Self {
        FuncCompiler {
            module,
            ids,
            f,
            insts: Vec::new(),
            scopes: vec![Vec::new()],
            next_local: -8, // below saved ebp (−0) and saved ebx (−4)
            max_locals: 0,
            free_slots: Vec::new(),
            epilogue_jumps: Vec::new(),
        }
    }

    fn run(mut self) -> Result<(Function, FuncTruth), CompileError> {
        // Prologue.
        self.emit(Inst::Push(Operand::Reg(Reg::Ebp)));
        self.emit(Inst::Mov {
            dst: Reg::Ebp,
            src: Operand::Reg(Reg::Esp),
        });
        self.emit(Inst::Push(Operand::Reg(Reg::Ebx)));
        let sub_fixup = self.emit(Inst::Bin {
            op: BinOp::Sub,
            dst: Reg::Esp,
            src: Operand::Imm(0), // patched with frame size
        });

        // Parameters.
        let mut truth_params = Vec::new();
        let mut stack_off = 8; // [ebp+8] = first stack argument
        let mut reg_params: Vec<(Reg, String, SrcType)> = Vec::new();
        for (idx, (name, ty)) in self.f.params.iter().enumerate() {
            if self.f.fastcall && idx < 2 {
                let reg = if idx == 0 { Reg::Ecx } else { Reg::Edx };
                reg_params.push((reg, name.clone(), ty.clone()));
                truth_params.push(ParamTruth {
                    loc: ParamLoc::Reg(reg.name().to_owned()),
                    ty: ty.clone(),
                });
            } else {
                self.scopes[0].push((name.clone(), VarSlot::Frame(stack_off), ty.clone()));
                truth_params.push(ParamTruth {
                    loc: ParamLoc::Stack((stack_off - 8) as u32),
                    ty: ty.clone(),
                });
                stack_off += 4;
            }
        }
        // Spill register parameters to fresh locals so the body can treat
        // them uniformly.
        for (reg, name, ty) in reg_params {
            let slot = self.alloc_slot();
            self.emit(Inst::Store {
                addr: Mem::new(Reg::Ebp, slot),
                src: Operand::Reg(reg),
                size: 4,
            });
            self.scopes[0].push((name, VarSlot::Frame(slot), ty));
        }

        // Body.
        for s in &self.f.body {
            self.stmt(s)?;
        }

        // Epilogue (shared by all returns — fortuitous re-use).
        let epilogue = self.insts.len();
        for j in std::mem::take(&mut self.epilogue_jumps) {
            self.patch_target(j, epilogue);
        }
        self.emit(Inst::Bin {
            op: BinOp::Add,
            dst: Reg::Esp,
            src: Operand::Imm(self.max_locals as i64),
        });
        self.emit(Inst::Pop(Reg::Ebx));
        self.emit(Inst::Pop(Reg::Ebp));
        self.emit(Inst::Ret);
        // Patch the frame-size reservation.
        if let Inst::Bin { src, .. } = &mut self.insts[sub_fixup] {
            *src = Operand::Imm(self.max_locals as i64);
        }

        let truth = FuncTruth {
            name: self.f.name.clone(),
            params: truth_params,
            ret: if self.f.ret == SrcType::Void {
                None
            } else {
                Some(self.f.ret.clone())
            },
        };
        Ok((Function::new(self.f.name.clone(), self.insts), truth))
    }

    fn emit(&mut self, i: Inst) -> usize {
        self.insts.push(i);
        self.insts.len() - 1
    }

    fn patch_target(&mut self, at: usize, target: usize) {
        match &mut self.insts[at] {
            Inst::Jmp(t) => *t = target,
            Inst::Jcc { target: t, .. } => *t = target,
            other => panic!("patching non-jump {other}"),
        }
    }

    fn alloc_slot(&mut self) -> i32 {
        let slot = self.free_slots.pop().unwrap_or_else(|| {
            let s = self.next_local;
            self.next_local -= 4;
            s
        });
        let depth = -slot - 4; // bytes below saved ebx
        self.max_locals = self.max_locals.max(depth);
        slot
    }

    fn lookup(&self, name: &str) -> Result<(VarSlot, SrcType), CompileError> {
        for scope in self.scopes.iter().rev() {
            for (n, slot, ty) in scope.iter().rev() {
                if n == name {
                    return Ok((*slot, ty.clone()));
                }
            }
        }
        Err(CompileError::new(format!("unknown variable {name}")))
    }

    fn struct_of(&self, ty: &SrcType) -> Result<usize, CompileError> {
        match ty.untagged() {
            SrcType::Ptr { pointee, .. } => match pointee.untagged() {
                SrcType::Struct(i) => Ok(*i),
                other => Err(CompileError::new(format!(
                    "field access through non-struct pointer {other}"
                ))),
            },
            other => Err(CompileError::new(format!(
                "field access on non-pointer {other}"
            ))),
        }
    }

    /// Static type of an expression.
    fn type_of(&self, e: &Expr) -> Result<SrcType, CompileError> {
        match e {
            Expr::Int(_) => Ok(SrcType::Int),
            Expr::Var(n) => Ok(self.lookup(n)?.1),
            Expr::Bin(_, a, _) => self.type_of(a),
            Expr::Cmp(..) => Ok(SrcType::Int),
            Expr::Field(base, field) => {
                let si = self.struct_of(&self.type_of(base)?)?;
                self.module.structs[si]
                    .field_type(field)
                    .cloned()
                    .ok_or_else(|| CompileError::new(format!("unknown field {field}")))
            }
            Expr::Deref(p) => match self.type_of(p)?.untagged() {
                SrcType::Ptr { pointee, .. } => Ok((**pointee).clone()),
                other => Err(CompileError::new(format!("deref of non-pointer {other}"))),
            },
            Expr::AddrOf(n) => Ok(SrcType::ptr(self.lookup(n)?.1)),
            Expr::Call(name, _) => {
                if let Some(f) = self.module.func_by_name(name) {
                    Ok(f.ret.clone())
                } else {
                    Ok(external_return_type(name))
                }
            }
            Expr::Cast(t, _) => Ok(t.clone()),
        }
    }

    /// Evaluates an expression into `eax`.
    fn expr(&mut self, e: &Expr) -> Result<(), CompileError> {
        match e {
            Expr::Int(0) => {
                // Semi-syntactic constant (§2.1).
                self.emit(Inst::Bin {
                    op: BinOp::Xor,
                    dst: Reg::Eax,
                    src: Operand::Reg(Reg::Eax),
                });
            }
            Expr::Int(k) => {
                self.emit(Inst::Mov {
                    dst: Reg::Eax,
                    src: Operand::Imm(*k),
                });
            }
            Expr::Var(n) => {
                let (VarSlot::Frame(off), _) = self.lookup(n)?;
                self.emit(Inst::Load {
                    dst: Reg::Eax,
                    addr: Mem::new(Reg::Ebp, off),
                    size: 4,
                });
            }
            Expr::Bin(op, a, b) => {
                self.expr(b)?;
                self.emit(Inst::Push(Operand::Reg(Reg::Eax)));
                self.expr(a)?;
                self.emit(Inst::Pop(Reg::Ebx));
                let mop = match op {
                    BinKind::Add => BinOp::Add,
                    BinKind::Sub => BinOp::Sub,
                    BinKind::Mul => BinOp::Imul,
                    BinKind::And => BinOp::And,
                    BinKind::Or => BinOp::Or,
                    BinKind::Xor => BinOp::Xor,
                };
                self.emit(Inst::Bin {
                    op: mop,
                    dst: Reg::Eax,
                    src: Operand::Reg(Reg::Ebx),
                });
            }
            Expr::Cmp(op, a, b) => {
                self.expr(b)?;
                self.emit(Inst::Push(Operand::Reg(Reg::Eax)));
                self.expr(a)?;
                self.emit(Inst::Pop(Reg::Ebx));
                self.emit(Inst::Cmp {
                    a: Reg::Eax,
                    b: Operand::Reg(Reg::Ebx),
                });
                let cond = match op {
                    CmpKind::Eq => Cond::Eq,
                    CmpKind::Ne => Cond::Ne,
                    CmpKind::Lt => Cond::Lt,
                    CmpKind::Le => Cond::Le,
                    CmpKind::Gt => Cond::Gt,
                    CmpKind::Ge => Cond::Ge,
                };
                let jt = self.emit(Inst::Jcc { cond, target: 0 });
                self.emit(Inst::Bin {
                    op: BinOp::Xor,
                    dst: Reg::Eax,
                    src: Operand::Reg(Reg::Eax),
                });
                let jend = self.emit(Inst::Jmp(0));
                let t = self.emit(Inst::Mov {
                    dst: Reg::Eax,
                    src: Operand::Imm(1),
                });
                self.patch_target(jt, t);
                let end = self.insts.len();
                self.patch_target(jend, end);
                self.emit(Inst::Nop);
            }
            Expr::Field(base, field) => {
                let bty = self.type_of(base)?;
                let si = self.struct_of(&bty)?;
                let off = self.module.structs[si]
                    .offset_of(field, self.module)
                    .ok_or_else(|| CompileError::new(format!("unknown field {field}")))?;
                let fty = self.module.structs[si]
                    .field_type(field)
                    .cloned()
                    .expect("offset implies field");
                self.expr(base)?;
                self.emit(Inst::Load {
                    dst: Reg::Eax,
                    addr: Mem::new(Reg::Eax, off as i32),
                    size: fty.size(self.module).min(4).max(1) as u8,
                });
            }
            Expr::Deref(p) => {
                let pty = self.type_of(p)?;
                let size = match pty.untagged() {
                    SrcType::Ptr { pointee, .. } => pointee.size(self.module).min(4).max(1),
                    _ => 4,
                };
                self.expr(p)?;
                self.emit(Inst::Load {
                    dst: Reg::Eax,
                    addr: Mem::new(Reg::Eax, 0),
                    size: size as u8,
                });
            }
            Expr::AddrOf(n) => {
                let (VarSlot::Frame(off), _) = self.lookup(n)?;
                self.emit(Inst::Lea {
                    dst: Reg::Eax,
                    addr: Mem::new(Reg::Ebp, off),
                });
            }
            Expr::Call(name, args) => self.call(name, args)?,
            Expr::Cast(_, inner) => self.expr(inner)?,
        }
        Ok(())
    }

    fn call(&mut self, name: &str, args: &[Expr]) -> Result<(), CompileError> {
        let callee = self.module.func_by_name(name);
        let fastcall = callee.map(|f| f.fastcall).unwrap_or(false);
        let n_reg = if fastcall { args.len().min(2) } else { 0 };
        // Push stack arguments right-to-left.
        for a in args.iter().skip(n_reg).rev() {
            self.push_arg(a)?;
        }
        // Register arguments.
        if n_reg == 2 {
            self.expr(&args[1])?;
            self.emit(Inst::Push(Operand::Reg(Reg::Eax)));
            self.expr(&args[0])?;
            self.emit(Inst::Mov {
                dst: Reg::Ecx,
                src: Operand::Reg(Reg::Eax),
            });
            self.emit(Inst::Pop(Reg::Edx));
        } else if n_reg == 1 {
            self.expr(&args[0])?;
            self.emit(Inst::Mov {
                dst: Reg::Ecx,
                src: Operand::Reg(Reg::Eax),
            });
        }
        let kind = match self.ids.get(name) {
            Some(id) => CallKind::Direct(*id),
            None => CallKind::External(name.to_owned()),
        };
        self.emit(Inst::Call(kind));
        let stack_args = args.len() - n_reg;
        if stack_args > 0 {
            self.emit(Inst::Bin {
                op: BinOp::Add,
                dst: Reg::Esp,
                src: Operand::Imm(4 * stack_args as i64),
            });
        }
        Ok(())
    }

    fn push_arg(&mut self, a: &Expr) -> Result<(), CompileError> {
        match a {
            Expr::Int(0) => {
                // f(0, NULL): xor + push reuses eax as a syntactic constant.
                self.emit(Inst::Bin {
                    op: BinOp::Xor,
                    dst: Reg::Eax,
                    src: Operand::Reg(Reg::Eax),
                });
                self.emit(Inst::Push(Operand::Reg(Reg::Eax)));
            }
            Expr::Int(k) => {
                self.emit(Inst::Push(Operand::Imm(*k)));
            }
            other => {
                self.expr(other)?;
                self.emit(Inst::Push(Operand::Reg(Reg::Eax)));
            }
        }
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), CompileError> {
        match s {
            Stmt::Decl(name, ty, init) => {
                self.expr(init)?;
                let slot = self.alloc_slot();
                self.emit(Inst::Store {
                    addr: Mem::new(Reg::Ebp, slot),
                    src: Operand::Reg(Reg::Eax),
                    size: 4,
                });
                self.scopes
                    .last_mut()
                    .expect("scope stack nonempty")
                    .push((name.clone(), VarSlot::Frame(slot), ty.clone()));
            }
            Stmt::Assign(name, e) => {
                self.expr(e)?;
                let (VarSlot::Frame(off), _) = self.lookup(name)?;
                self.emit(Inst::Store {
                    addr: Mem::new(Reg::Ebp, off),
                    src: Operand::Reg(Reg::Eax),
                    size: 4,
                });
            }
            Stmt::StoreField(base, field, value) => {
                let bty = self.type_of(base)?;
                let si = self.struct_of(&bty)?;
                let off = self.module.structs[si]
                    .offset_of(field, self.module)
                    .ok_or_else(|| CompileError::new(format!("unknown field {field}")))?;
                let size = self.module.structs[si]
                    .field_type(field)
                    .map(|t| t.size(self.module).min(4).max(1))
                    .unwrap_or(4);
                self.expr(value)?;
                self.emit(Inst::Push(Operand::Reg(Reg::Eax)));
                self.expr(base)?;
                self.emit(Inst::Pop(Reg::Ebx));
                self.emit(Inst::Store {
                    addr: Mem::new(Reg::Eax, off as i32),
                    src: Operand::Reg(Reg::Ebx),
                    size: size as u8,
                });
            }
            Stmt::StoreDeref(p, value) => {
                let pty = self.type_of(p)?;
                let size = match pty.untagged() {
                    SrcType::Ptr { pointee, .. } => pointee.size(self.module).min(4).max(1),
                    _ => 4,
                };
                self.expr(value)?;
                self.emit(Inst::Push(Operand::Reg(Reg::Eax)));
                self.expr(p)?;
                self.emit(Inst::Pop(Reg::Ebx));
                self.emit(Inst::Store {
                    addr: Mem::new(Reg::Eax, 0),
                    src: Operand::Reg(Reg::Ebx),
                    size: size as u8,
                });
            }
            Stmt::Expr(e) => self.expr(e)?,
            Stmt::If(c, then_b, else_b) => {
                self.expr(c)?;
                self.emit(Inst::Test {
                    a: Reg::Eax,
                    b: Reg::Eax,
                });
                let jelse = self.emit(Inst::Jcc {
                    cond: Cond::Eq,
                    target: 0,
                });
                self.block(then_b)?;
                if else_b.is_empty() {
                    let end = self.insts.len();
                    self.patch_target(jelse, end);
                    self.emit(Inst::Nop);
                } else {
                    let jend = self.emit(Inst::Jmp(0));
                    let else_start = self.insts.len();
                    self.patch_target(jelse, else_start);
                    self.block(else_b)?;
                    let end = self.insts.len();
                    self.patch_target(jend, end);
                    self.emit(Inst::Nop);
                }
            }
            Stmt::While(c, body) => {
                let head = self.insts.len();
                self.expr(c)?;
                self.emit(Inst::Test {
                    a: Reg::Eax,
                    b: Reg::Eax,
                });
                let jexit = self.emit(Inst::Jcc {
                    cond: Cond::Eq,
                    target: 0,
                });
                self.block(body)?;
                self.emit(Inst::Jmp(head));
                let end = self.insts.len();
                self.patch_target(jexit, end);
                self.emit(Inst::Nop);
            }
            Stmt::Return(e) => {
                if let Some(e) = e {
                    self.expr(e)?;
                }
                let j = self.emit(Inst::Jmp(0));
                self.epilogue_jumps.push(j);
            }
        }
        Ok(())
    }

    /// Compiles a nested block with its own scope; slots allocated inside
    /// are freed for reuse afterwards (§2.1 stack-slot reuse).
    fn block(&mut self, stmts: &[Stmt]) -> Result<(), CompileError> {
        self.scopes.push(Vec::new());
        for s in stmts {
            self.stmt(s)?;
        }
        let scope = self.scopes.pop().expect("scope pushed above");
        for (_, VarSlot::Frame(off), _) in scope {
            if off < 0 {
                self.free_slots.push(off);
            }
        }
        Ok(())
    }
}

/// Return types of the modeled externals (see `retypd_congen::stdlib`).
fn external_return_type(name: &str) -> SrcType {
    match name {
        "malloc" => SrcType::ptr(SrcType::Void),
        "strlen" => SrcType::UInt,
        "getpid" => SrcType::Tagged("pid_t".into(), Box::new(SrcType::Int)),
        "close" | "open" | "puts" | "abs" | "fclose" => SrcType::Int,
        "socket" => SrcType::Int,
        "time" => SrcType::Int,
        "fopen" => SrcType::ptr(SrcType::Void),
        _ => SrcType::Int,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::StructDef;

    fn ll_module() -> Module {
        // struct LL { struct LL* next; int handle; };
        // int close_last(const struct LL* list) {
        //   while (list->next != 0) { list = list->next; }
        //   return close(list->handle);
        // }
        Module {
            structs: vec![StructDef {
                name: "LL".into(),
                fields: vec![
                    ("next".into(), SrcType::ptr(SrcType::Struct(0))),
                    ("handle".into(), SrcType::Int),
                ],
            }],
            funcs: vec![FuncDef {
                name: "close_last".into(),
                params: vec![("list".into(), SrcType::const_ptr(SrcType::Struct(0)))],
                ret: SrcType::Int,
                body: vec![
                    Stmt::While(
                        Expr::Cmp(
                            CmpKind::Ne,
                            Box::new(Expr::Field(Box::new(Expr::Var("list".into())), "next".into())),
                            Box::new(Expr::Int(0)),
                        ),
                        vec![Stmt::Assign(
                            "list".into(),
                            Expr::Field(Box::new(Expr::Var("list".into())), "next".into()),
                        )],
                    ),
                    Stmt::Return(Some(Expr::Call(
                        "close".into(),
                        vec![Expr::Field(
                            Box::new(Expr::Var("list".into())),
                            "handle".into(),
                        )],
                    ))),
                ],
                fastcall: false,
            }],
        }
    }

    #[test]
    fn compiles_close_last() {
        let (mir, truth) = compile(&ll_module()).expect("compiles");
        assert_eq!(mir.funcs.len(), 1);
        let asm = mir.to_string();
        assert!(asm.contains("call close"), "{asm}");
        assert!(asm.contains("mov eax, dword [eax+0x4]"), "{asm}");
        let ft = truth.func("close_last").unwrap();
        assert_eq!(ft.params.len(), 1);
        assert!(matches!(
            ft.params[0].ty.untagged(),
            SrcType::Ptr { is_const: true, .. }
        ));
        assert_eq!(truth.const_param_count(), 1);
    }

    #[test]
    fn zero_compiles_to_xor() {
        let m = Module {
            structs: vec![],
            funcs: vec![FuncDef {
                name: "z".into(),
                params: vec![],
                ret: SrcType::Int,
                body: vec![Stmt::Return(Some(Expr::Int(0)))],
                fastcall: false,
            }],
        };
        let (mir, _) = compile(&m).unwrap();
        let asm = mir.to_string();
        assert!(asm.contains("xor eax, eax"), "{asm}");
    }

    #[test]
    fn scope_slots_are_reused() {
        // Two disjoint scopes: their locals share a stack slot.
        let m = Module {
            structs: vec![],
            funcs: vec![FuncDef {
                name: "r".into(),
                params: vec![("c".into(), SrcType::Int)],
                ret: SrcType::Int,
                body: vec![
                    Stmt::If(
                        Expr::Var("c".into()),
                        vec![Stmt::Decl("x".into(), SrcType::Int, Expr::Int(1))],
                        vec![],
                    ),
                    Stmt::If(
                        Expr::Var("c".into()),
                        vec![Stmt::Decl(
                            "p".into(),
                            SrcType::ptr(SrcType::Int),
                            Expr::Cast(
                                SrcType::ptr(SrcType::Int),
                                Box::new(Expr::Call("malloc".into(), vec![Expr::Int(4)])),
                            ),
                        )],
                        vec![],
                    ),
                    Stmt::Return(Some(Expr::Int(0))),
                ],
                fastcall: false,
            }],
        };
        let (mir, _) = compile(&m).unwrap();
        let asm = mir.to_string();
        // Both decls store to the same frame offset (slot reuse).
        let stores: Vec<&str> = asm
            .lines()
            .filter(|l| l.contains("mov dword [ebp-0x8]"))
            .collect();
        assert!(stores.len() >= 2, "{asm}");
    }

    #[test]
    fn fastcall_uses_registers() {
        let m = Module {
            structs: vec![],
            funcs: vec![
                FuncDef {
                    name: "fast".into(),
                    params: vec![("a".into(), SrcType::Int), ("b".into(), SrcType::Int)],
                    ret: SrcType::Int,
                    body: vec![Stmt::Return(Some(Expr::Bin(
                        BinKind::Add,
                        Box::new(Expr::Var("a".into())),
                        Box::new(Expr::Var("b".into())),
                    )))],
                    fastcall: true,
                },
                FuncDef {
                    name: "caller".into(),
                    params: vec![],
                    ret: SrcType::Int,
                    body: vec![Stmt::Return(Some(Expr::Call(
                        "fast".into(),
                        vec![Expr::Int(1), Expr::Int(2)],
                    )))],
                    fastcall: false,
                },
            ],
        };
        let (mir, truth) = compile(&m).unwrap();
        let asm = mir.to_string();
        assert!(asm.contains("mov ecx, eax"), "{asm}");
        let ft = truth.func("fast").unwrap();
        assert!(matches!(&ft.params[0].loc, ParamLoc::Reg(r) if r == "ecx"));
    }
}
