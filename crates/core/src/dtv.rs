//! Base type variables and derived type variables (Definition 3.1).

use std::fmt;

use crate::intern::Symbol;
use crate::label::Label;
use crate::variance::Variance;
use crate::word_variance;

/// A base type variable: either an abstract variable or a type constant.
///
/// Type constants are symbolic names of elements of the auxiliary lattice Λ
/// (§3.1: "symbolic representations κ of elements belonging to some
/// lattice"). They are uninterpreted at the constraint level; the solver
/// resolves them against a [`crate::Lattice`] by name.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum BaseVar {
    /// An abstract type variable, e.g. the variable for a procedure or for a
    /// register at a program point.
    Var(Symbol),
    /// A type constant naming a lattice element, e.g. `int` or
    /// `#FileDescriptor`.
    Const(Symbol),
}

impl BaseVar {
    /// Creates an abstract variable with the given name.
    pub fn var(name: &str) -> BaseVar {
        BaseVar::Var(Symbol::intern(name))
    }

    /// Creates a type constant with the given lattice-element name.
    pub fn constant(name: &str) -> BaseVar {
        BaseVar::Const(Symbol::intern(name))
    }

    /// The variable's name.
    pub fn name(self) -> Symbol {
        match self {
            BaseVar::Var(s) | BaseVar::Const(s) => s,
        }
    }

    /// True if this is a type constant.
    pub fn is_const(self) -> bool {
        matches!(self, BaseVar::Const(_))
    }
}

impl fmt::Display for BaseVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaseVar::Var(s) => write!(f, "{s}"),
            BaseVar::Const(s) => {
                let name = s.as_str();
                // Constants must render in a form the parser reads back as
                // a constant: `#tag` and well-known names are self-marking,
                // anything else (a custom-lattice element) needs its `$`
                // sigil or the round trip degrades it to a variable.
                if name.starts_with('#')
                    || crate::parse::WELL_KNOWN_CONSTANTS.contains(&name)
                {
                    write!(f, "{name}")
                } else {
                    write!(f, "${name}")
                }
            }
        }
    }
}

/// A derived type variable `α.w`: a base variable and a word of field labels
/// (Definition 3.1).
///
/// ```
/// use retypd_core::{BaseVar, DerivedVar, Label};
///
/// let f = DerivedVar::new(BaseVar::var("f"))
///     .push(Label::in_stack(0))
///     .push(Label::Load)
///     .push(Label::sigma(32, 4));
/// assert_eq!(f.to_string(), "f.in_stack0.load.σ32@4");
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct DerivedVar {
    base: BaseVar,
    path: Vec<Label>,
}

impl DerivedVar {
    /// A derived variable with an empty label word.
    pub fn new(base: BaseVar) -> DerivedVar {
        DerivedVar {
            base,
            path: Vec::new(),
        }
    }

    /// A derived variable with the given label word.
    pub fn with_path(base: BaseVar, path: Vec<Label>) -> DerivedVar {
        DerivedVar { base, path }
    }

    /// Shorthand: an abstract variable with no labels.
    pub fn var(name: &str) -> DerivedVar {
        DerivedVar::new(BaseVar::var(name))
    }

    /// Shorthand: a type constant with no labels.
    pub fn constant(name: &str) -> DerivedVar {
        DerivedVar::new(BaseVar::constant(name))
    }

    /// The base variable.
    pub fn base(&self) -> BaseVar {
        self.base
    }

    /// The label word.
    pub fn path(&self) -> &[Label] {
        &self.path
    }

    /// Extends the label word by one label, consuming `self`.
    #[must_use]
    pub fn push(mut self, label: Label) -> DerivedVar {
        self.path.push(label);
        self
    }

    /// Extends the label word by `labels`.
    #[must_use]
    pub fn extend(mut self, labels: impl IntoIterator<Item = Label>) -> DerivedVar {
        self.path.extend(labels);
        self
    }

    /// The parent `α.w` of `α.wℓ`, or `None` for a bare variable.
    pub fn parent(&self) -> Option<DerivedVar> {
        if self.path.is_empty() {
            return None;
        }
        Some(DerivedVar {
            base: self.base,
            path: self.path[..self.path.len() - 1].to_vec(),
        })
    }

    /// The last label of the word, if any.
    pub fn last_label(&self) -> Option<Label> {
        self.path.last().copied()
    }

    /// Iterates over all proper and improper prefixes, from the bare base
    /// variable up to `self`.
    pub fn prefixes(&self) -> impl Iterator<Item = DerivedVar> + '_ {
        (0..=self.path.len()).map(move |i| DerivedVar {
            base: self.base,
            path: self.path[..i].to_vec(),
        })
    }

    /// The variance `⟨w⟩` of the label word (Definition 3.2).
    pub fn variance(&self) -> Variance {
        word_variance(&self.path)
    }

    /// The number of labels in the word.
    pub fn len(&self) -> usize {
        self.path.len()
    }

    /// True if the label word is empty.
    pub fn is_empty(&self) -> bool {
        self.path.is_empty()
    }

    /// True if the base variable is a type constant.
    pub fn is_const(&self) -> bool {
        self.base.is_const()
    }
}

impl From<BaseVar> for DerivedVar {
    fn from(base: BaseVar) -> DerivedVar {
        DerivedVar::new(base)
    }
}

impl fmt::Display for DerivedVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.base)?;
        for l in &self.path {
            write!(f, ".{l}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefixes_enumerate_bottom_up() {
        let d = DerivedVar::var("p").push(Label::Load).push(Label::sigma(32, 0));
        let ps: Vec<String> = d.prefixes().map(|p| p.to_string()).collect();
        assert_eq!(ps, vec!["p", "p.load", "p.load.σ32@0"]);
    }

    #[test]
    fn parent_of_bare_var_is_none() {
        assert_eq!(DerivedVar::var("x").parent(), None);
        let d = DerivedVar::var("x").push(Label::Load);
        assert_eq!(d.parent(), Some(DerivedVar::var("x")));
    }

    #[test]
    fn variance_of_path() {
        let d = DerivedVar::var("f").push(Label::in_stack(0)).push(Label::Load);
        assert_eq!(d.variance(), Variance::Contravariant);
        assert_eq!(DerivedVar::var("x").variance(), Variance::Covariant);
    }

    #[test]
    fn consts_are_flagged() {
        assert!(DerivedVar::constant("int").is_const());
        assert!(!DerivedVar::var("int_var").is_const());
    }
}
