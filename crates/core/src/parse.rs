//! Textual syntax for derived type variables and constraints.
//!
//! This mirrors the notation used in the paper so that tests and examples
//! can state constraint sets readably:
//!
//! * derived variables: `f.in_stack0.load.σ32@4` (ASCII `s32@4` also
//!   accepted),
//! * subtype constraints: `x.load ⊑ y` or `x.load <= y`,
//! * type constants: names starting with `#` (semantic tags) or names listed
//!   in [`WELL_KNOWN_CONSTANTS`], or any name wrapped as `$name`.
//!
//! ```
//! use retypd_core::parse::{parse_constraint, parse_derived_var};
//!
//! let dv = parse_derived_var("f.in_stack0.load.σ32@4").unwrap();
//! assert_eq!(dv.path().len(), 3);
//! let c = parse_constraint("int <= f.out_eax").unwrap();
//! assert!(c.lhs.is_const());
//! ```

use std::fmt;

use crate::constraint::SubtypeConstraint;
use crate::dtv::{BaseVar, DerivedVar};
use crate::label::{Label, Loc};

/// Names treated as type constants without requiring a `#`/`$` sigil.
///
/// These cover the default lattices shipped with this crate; user-defined
/// lattice elements can always be written with a `$` sigil or `#` tag.
pub const WELL_KNOWN_CONSTANTS: &[&str] = &[
    "top", "bottom", "⊤", "⊥", "int", "uint", "int8", "int16", "int32", "int64", "uint8",
    "uint16", "uint32", "uint64", "char", "float", "double", "float32", "float64", "code",
    "size_t", "uintptr_t", "pid_t", "bool_t", "str", "num", "url", "FILE", "HANDLE", "SOCKET",
    "reg8", "reg16", "reg32", "reg64", "cstring",
];

/// An error produced while parsing the textual constraint syntax.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    message: String,
    input: String,
}

impl ParseError {
    fn new(message: impl Into<String>, input: &str) -> ParseError {
        ParseError {
            message: message.into(),
            input: input.to_owned(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} in {:?}", self.message, self.input)
    }
}

impl std::error::Error for ParseError {}

fn parse_label(tok: &str, input: &str) -> Result<Label, ParseError> {
    if tok == "load" {
        return Ok(Label::Load);
    }
    if tok == "store" {
        return Ok(Label::Store);
    }
    if let Some(rest) = tok.strip_prefix("in_") {
        return Ok(Label::In(parse_loc(rest, input)?));
    }
    if let Some(rest) = tok.strip_prefix("out_") {
        return Ok(Label::Out(parse_loc(rest, input)?));
    }
    // σN@k or sN@k
    let body = tok
        .strip_prefix("σ")
        .or_else(|| tok.strip_prefix('s'))
        .ok_or_else(|| ParseError::new(format!("unknown label {tok:?}"), input))?;
    let (bits, off) = body
        .split_once('@')
        .ok_or_else(|| ParseError::new(format!("malformed σ label {tok:?}"), input))?;
    let bits: u16 = bits
        .parse()
        .map_err(|_| ParseError::new(format!("bad bit width in {tok:?}"), input))?;
    let off: i32 = off
        .parse()
        .map_err(|_| ParseError::new(format!("bad offset in {tok:?}"), input))?;
    Ok(Label::Sigma { bits, offset: off })
}

fn parse_loc(tok: &str, input: &str) -> Result<Loc, ParseError> {
    if let Some(num) = tok.strip_prefix("stack") {
        let off: u32 = num
            .parse()
            .map_err(|_| ParseError::new(format!("bad stack offset {tok:?}"), input))?;
        return Ok(Loc::Stack(off));
    }
    if tok.is_empty() {
        return Err(ParseError::new("empty location", input));
    }
    Ok(Loc::reg(tok))
}

/// Parses a derived type variable such as `p.load.σ32@0`.
///
/// # Errors
///
/// Returns a [`ParseError`] if a label is malformed or the base name is
/// empty.
pub fn parse_derived_var(s: &str) -> Result<DerivedVar, ParseError> {
    let s = s.trim();
    if s.is_empty() {
        return Err(ParseError::new("empty derived variable", s));
    }
    let mut parts = s.split('.');
    let base_tok = parts.next().expect("split yields at least one element");
    if base_tok.is_empty() {
        return Err(ParseError::new("empty base variable", s));
    }
    let base = if let Some(name) = base_tok.strip_prefix('$') {
        BaseVar::constant(name)
    } else if base_tok.starts_with('#') || WELL_KNOWN_CONSTANTS.contains(&base_tok) {
        BaseVar::constant(base_tok)
    } else {
        BaseVar::var(base_tok)
    };
    let mut dv = DerivedVar::new(base);
    for tok in parts {
        dv = dv.push(parse_label(tok, s)?);
    }
    Ok(dv)
}

/// Parses a subtype constraint, accepting `⊑`, `<=` or `<:` as the relation
/// symbol.
///
/// # Errors
///
/// Returns a [`ParseError`] if the relation symbol is missing or either side
/// fails to parse.
pub fn parse_constraint(s: &str) -> Result<SubtypeConstraint, ParseError> {
    for sep in ["⊑", "<=", "<:"] {
        if let Some((l, r)) = s.split_once(sep) {
            let lhs = parse_derived_var(l)?;
            let rhs = parse_derived_var(r)?;
            return Ok(SubtypeConstraint::new(lhs, rhs));
        }
    }
    Err(ParseError::new("missing ⊑ / <= / <:", s))
}

/// Parses an additive constraint in its canonical display form,
/// `Add(x, y; z)` or `Sub(x, y; z)` (`z = x ± y`, Appendix A.6).
///
/// # Errors
///
/// Returns a [`ParseError`] if the shape is malformed or any operand fails
/// to parse as a derived variable.
pub fn parse_addsub(s: &str) -> Result<crate::AddSubConstraint, ParseError> {
    use crate::constraint::{AddSubConstraint, AddSubKind};
    let s = s.trim();
    let (kind, rest) = if let Some(r) = s.strip_prefix("Add(") {
        (AddSubKind::Add, r)
    } else if let Some(r) = s.strip_prefix("Sub(") {
        (AddSubKind::Sub, r)
    } else {
        return Err(ParseError::new("expected Add(…) or Sub(…)", s));
    };
    let body = rest
        .strip_suffix(')')
        .ok_or_else(|| ParseError::new("missing closing )", s))?;
    let (operands, result) = body
        .split_once(';')
        .ok_or_else(|| ParseError::new("missing `;` before result operand", s))?;
    let (x, y) = operands
        .split_once(',')
        .ok_or_else(|| ParseError::new("missing `,` between operands", s))?;
    Ok(AddSubConstraint {
        kind,
        x: parse_derived_var(x)?,
        y: parse_derived_var(y)?,
        z: parse_derived_var(result)?,
    })
}

/// Splits one physical line into statements at top-level semicolons —
/// semicolons inside parentheses (the `Add(x, y; z)` display form) do not
/// separate statements.
fn split_statements(line: &str) -> impl Iterator<Item = &str> {
    let mut depth = 0usize;
    let mut start = 0usize;
    let mut out = Vec::new();
    for (i, c) in line.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => depth = depth.saturating_sub(1),
            ';' if depth == 0 => {
                out.push(&line[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&line[start..]);
    out.into_iter()
}

/// Parses a whole constraint set, one constraint per line or semicolon-
/// separated (semicolons inside parentheses do not split). Blank lines and
/// `//` comments are skipped. Accepts everything [`crate::ConstraintSet`]'s
/// `Display` emits — subtype constraints, `VAR` declarations, and
/// `Add`/`Sub` additive constraints — so rendered sets round-trip, which is
/// what the wire protocol and the content fingerprints rely on.
///
/// # Errors
///
/// Returns the first [`ParseError`] encountered.
pub fn parse_constraint_set(s: &str) -> Result<crate::ConstraintSet, ParseError> {
    let mut out = crate::ConstraintSet::new();
    for raw in s.lines().flat_map(split_statements) {
        let line = match raw.split_once("//") {
            Some((code, _)) => code.trim(),
            None => raw.trim(),
        };
        if line.is_empty() {
            continue;
        }
        if let Some(v) = line.strip_prefix("VAR ") {
            out.add_var_decl(parse_derived_var(v)?);
        } else if line.starts_with("Add(") || line.starts_with("Sub(") {
            out.add_addsub(parse_addsub(line)?);
        } else {
            let c = parse_constraint(line)?;
            out.add_sub(c.lhs, c.rhs);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Variance;

    #[test]
    fn round_trips_display() {
        for s in [
            "f.in_stack0.load.σ32@4",
            "p.load",
            "close_last.out_eax",
            "x",
            "#FileDescriptor",
        ] {
            let d = parse_derived_var(s).unwrap();
            assert_eq!(d.to_string(), s);
        }
    }

    #[test]
    fn ascii_sigma_accepted() {
        let d = parse_derived_var("p.load.s32@8").unwrap();
        assert_eq!(d.to_string(), "p.load.σ32@8");
    }

    #[test]
    fn constants_recognized() {
        assert!(parse_derived_var("int").unwrap().is_const());
        assert!(parse_derived_var("#SuccessZ").unwrap().is_const());
        assert!(parse_derived_var("$custom").unwrap().is_const());
        assert!(!parse_derived_var("myvar").unwrap().is_const());
    }

    #[test]
    fn constraint_separators() {
        for s in ["a ⊑ b", "a <= b", "a <: b"] {
            let c = parse_constraint(s).unwrap();
            assert_eq!(c.lhs.to_string(), "a");
            assert_eq!(c.rhs.to_string(), "b");
        }
    }

    #[test]
    fn addsub_round_trips_display() {
        use crate::constraint::AddSubKind;
        for s in ["Add(a, b; c)", "Sub(p.load.σ32@0, one; q)"] {
            let c = parse_addsub(s).unwrap();
            assert_eq!(c.to_string(), s);
        }
        assert_eq!(parse_addsub("Add(a, b; c)").unwrap().kind, AddSubKind::Add);
        assert!(parse_addsub("Mul(a, b; c)").is_err());
        assert!(parse_addsub("Add(a, b, c)").is_err());
    }

    #[test]
    fn constraint_set_display_round_trips() {
        use crate::constraint::{AddSubConstraint, AddSubKind};
        let mut cs = crate::ConstraintSet::new();
        cs.add_sub_str("f.in_stack0", "t");
        cs.add_sub_str("t.load.σ32@4", "int");
        cs.add_var_decl(parse_derived_var("q.load").unwrap());
        cs.add_addsub(AddSubConstraint {
            kind: AddSubKind::Add,
            x: parse_derived_var("a").unwrap(),
            y: parse_derived_var("b").unwrap(),
            z: parse_derived_var("c").unwrap(),
        });
        cs.add_addsub(AddSubConstraint {
            kind: AddSubKind::Sub,
            x: parse_derived_var("c").unwrap(),
            y: parse_derived_var("b").unwrap(),
            z: parse_derived_var("d").unwrap(),
        });
        let reparsed = parse_constraint_set(&cs.to_string()).unwrap();
        assert_eq!(reparsed, cs);
        // Semicolon-joined single-line form round-trips too.
        let one_line = cs.to_string().replace('\n', ";");
        assert_eq!(parse_constraint_set(&one_line).unwrap(), cs);
    }

    #[test]
    fn set_parsing_with_comments() {
        let cs = parse_constraint_set(
            "// Figure 4, first program\n\
             q <= p\n\
             x <= p.store ; q.load <= y\n\
             VAR q.load\n",
        )
        .unwrap();
        assert_eq!(cs.len(), 3);
        assert_eq!(cs.var_decls().count(), 1);
    }

    #[test]
    fn variance_through_parse() {
        let d = parse_derived_var("f.in_stack0.load").unwrap();
        assert_eq!(d.variance(), Variance::Contravariant);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_derived_var("").is_err());
        assert!(parse_derived_var("x.banana").is_err());
        assert!(parse_derived_var("x.σ32").is_err());
        assert!(parse_constraint("a b").is_err());
    }
}
