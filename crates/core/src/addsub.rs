//! Additive-constraint propagation: `ADD(X,Y;Z)` / `SUB(X,Y;Z)`
//! (Appendix A.6, Figure 13).
//!
//! Machine-code addition and subtraction conflate pointer arithmetic and
//! integer arithmetic. When neither operand is a statically known constant,
//! constraint generation emits a three-place additive constraint; this
//! module implements the Figure 13 inference table, conditionally
//! propagating *pointer-like* and *integer-like* classifications between
//! the operands and the result:
//!
//! | premise (ADD)          | conclusion              |
//! |------------------------|-------------------------|
//! | `x:int ∧ y:int`        | `z:int`                 |
//! | `z:int`                | `x:int ∧ y:int`         |
//! | `x:ptr`                | `y:int ∧ z:ptr`         |
//! | `y:ptr`                | `x:int ∧ z:ptr`         |
//! | `z:ptr ∧ x:int`        | `y:ptr`                 |
//! | `z:ptr ∧ y:int`        | `x:ptr`                 |
//!
//! and for `SUB` (`z = x − y`):
//!
//! | premise                | conclusion              |
//! |------------------------|-------------------------|
//! | `y:int ∧ z:int`        | `x:int`                 |
//! | `y:int ∧ z:ptr`        | `x:ptr`                 |
//! | `y:ptr`                | `x:ptr ∧ z:int`         |
//! | `x:ptr ∧ z:int`        | `y:ptr`                 |
//! | `x:ptr ∧ y:int`        | `z:ptr`                 |
//! | `x:ptr ∧ z:ptr`        | `y:int`                 |
//!
//! Following Appendix A.6, fully applied pointer conclusions also update
//! the shape quotient: `p ± i` shares its pointee shape with `p` (the
//! common array-indexing idiom), which is how "new subtype constraints are
//! added as the additive constraints are applied".

use std::collections::HashMap;

use crate::constraint::{AddSubKind, ConstraintSet};
use crate::dtv::DerivedVar;

use crate::lattice::Lattice;
use crate::shapes::{ClassId, ShapeQuotient};

/// Pointer/integer classification of a shape class.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PiMark {
    /// Classified integer-like.
    pub int_like: bool,
    /// Classified pointer-like.
    pub ptr_like: bool,
}

impl PiMark {
    /// True if both classifications apply — a cross-cast or bit-twiddling
    /// conflict (§2.6); resolved during C-type conversion with a union.
    pub fn conflicted(self) -> bool {
        self.int_like && self.ptr_like
    }
}

/// The result of additive-constraint application.
#[derive(Clone, Debug, Default)]
pub struct AddSubSolution {
    marks: HashMap<ClassId, PiMark>,
    /// Number of pointer-result unifications applied to the quotient.
    pub unified: usize,
}

impl AddSubSolution {
    /// The classification of a class (empty if never classified).
    pub fn mark(&self, c: ClassId) -> PiMark {
        self.marks.get(&c).copied().unwrap_or_default()
    }
}

/// Lattice elements considered integer-like for seeding the marks.
fn is_integral(lattice: &Lattice, name: crate::Symbol) -> bool {
    let Some(e) = lattice.element_sym(name) else {
        return false;
    };
    for root in [
        "int64", "uint64", "int32", "uint32", "int16", "uint16", "int8", "uint8", "char",
    ] {
        if let Some(r) = lattice.element(root) {
            if lattice.leq(e, r) && e != lattice.bottom() {
                return true;
            }
        }
    }
    false
}

/// Applies every additive constraint of `cs` to the quotient, computing
/// pointer/integer marks by fixpoint over the Figure 13 rules and unifying
/// pointer results with their pointer operand.
pub fn apply_addsubs(
    cs: &ConstraintSet,
    quotient: &mut ShapeQuotient,
    lattice: &Lattice,
) -> AddSubSolution {
    let mut sol = AddSubSolution::default();

    // Seed marks: pointer-like if the class has a pointer capability;
    // integer-like if it contains an integral constant.
    let seed = |q: &ShapeQuotient, sol: &mut AddSubSolution| {
        for c in q.classes() {
            let mut m = sol.marks.get(&c).copied().unwrap_or_default();
            for (l, _) in q.successors(c) {
                if l.is_pointer_access() {
                    m.ptr_like = true;
                }
            }
            for d in q.members(c) {
                if d.is_empty() && d.base().is_const() && is_integral(lattice, d.base().name()) {
                    m.int_like = true;
                }
            }
            sol.marks.insert(c, m);
        }
    };
    seed(quotient, &mut sol);

    let class = |q: &ShapeQuotient, d: &DerivedVar| q.walk(d.base(), d.path());

    // Fixpoint over the inference table.
    loop {
        let mut changed = false;
        for a in cs.addsubs() {
            let (Some(cx), Some(cy), Some(cz)) = (
                class(quotient, &a.x),
                class(quotient, &a.y),
                class(quotient, &a.z),
            ) else {
                continue;
            };
            let mut mx = sol.mark(cx);
            let mut my = sol.mark(cy);
            let mut mz = sol.mark(cz);
            let before = (mx, my, mz);
            match a.kind {
                AddSubKind::Add => {
                    if mx.int_like && my.int_like {
                        mz.int_like = true;
                    }
                    if mz.int_like {
                        mx.int_like = true;
                        my.int_like = true;
                    }
                    if mx.ptr_like {
                        my.int_like = true;
                        mz.ptr_like = true;
                    }
                    if my.ptr_like {
                        mx.int_like = true;
                        mz.ptr_like = true;
                    }
                    if mz.ptr_like && mx.int_like {
                        my.ptr_like = true;
                    }
                    if mz.ptr_like && my.int_like {
                        mx.ptr_like = true;
                    }
                }
                AddSubKind::Sub => {
                    if my.int_like && mz.int_like {
                        mx.int_like = true;
                    }
                    if my.int_like && mz.ptr_like {
                        mx.ptr_like = true;
                    }
                    if my.ptr_like {
                        mx.ptr_like = true;
                        mz.int_like = true;
                    }
                    if mx.ptr_like && mz.int_like {
                        my.ptr_like = true;
                    }
                    if mx.ptr_like && my.int_like {
                        mz.ptr_like = true;
                    }
                    if mx.ptr_like && mz.ptr_like {
                        my.int_like = true;
                    }
                }
            }
            if (mx, my, mz) != before {
                changed = true;
            }
            sol.marks.insert(cx, mx);
            sol.marks.insert(cy, my);
            sol.marks.insert(cz, mz);
        }
        if !changed {
            break;
        }
    }

    // Apply pointer-result unifications: z shares shape with the pointer
    // operand when the other operand is integral.
    for a in cs.addsubs() {
        let (Some(cx), Some(cy)) = (class(quotient, &a.x), class(quotient, &a.y)) else {
            continue;
        };
        let mx = sol.mark(cx);
        let my = sol.mark(cy);
        match a.kind {
            AddSubKind::Add => {
                if mx.ptr_like && !my.ptr_like {
                    quotient.unify(&a.z, &a.x);
                    sol.unified += 1;
                } else if my.ptr_like && !mx.ptr_like {
                    quotient.unify(&a.z, &a.y);
                    sol.unified += 1;
                }
            }
            AddSubKind::Sub => {
                if mx.ptr_like && !my.ptr_like {
                    quotient.unify(&a.z, &a.x);
                    sol.unified += 1;
                }
            }
        }
    }
    // Unification can merge classes with stale marks; reseed and refresh.
    seed(quotient, &mut sol);
    sol
}

/// The constraints implied by the final marks (Appendix A.6: "the
/// constraint set also should be updated with new subtype constraints as
/// the additive constraints are applied"): every bare variable in a class
/// classified integer-like (and not pointer-like) is bounded above by
/// `integral32`.
pub fn integral_bound_constraints(
    cs: &ConstraintSet,
    quotient: &ShapeQuotient,
    sol: &AddSubSolution,
    lattice: &Lattice,
) -> Vec<(DerivedVar, DerivedVar)> {
    let Some(_) = lattice.element("integral32") else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let mut touched = std::collections::BTreeSet::new();
    for a in cs.addsubs() {
        for d in [&a.x, &a.y, &a.z] {
            if d.is_const() {
                continue;
            }
            let Some(c) = quotient.walk(d.base(), d.path()) else {
                continue;
            };
            let m = sol.mark(c);
            if m.int_like && !m.ptr_like && touched.insert(d.clone()) {
                out.push((d.clone(), DerivedVar::constant("integral32")));
            }
        }
    }
    out
}

/// Applies additive constraints and folds the implied integral bounds back
/// into a copy of the constraint set (one augmentation round).
pub fn augment_with_addsubs(cs: &ConstraintSet, lattice: &Lattice) -> ConstraintSet {
    let mut quotient = ShapeQuotient::build(cs);
    let sol = apply_addsubs(cs, &mut quotient, lattice);
    let extra = integral_bound_constraints(cs, &quotient, &sol, lattice);
    if extra.is_empty() {
        return cs.clone();
    }
    let mut out = cs.clone();
    for (l, r) in extra {
        out.add_sub(l, r);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::AddSubConstraint;
    use crate::parse::{parse_constraint_set, parse_derived_var};

    fn dv(s: &str) -> DerivedVar {
        parse_derived_var(s).unwrap()
    }

    fn run(src: &str, addsubs: &[(AddSubKind, &str, &str, &str)]) -> (ShapeQuotient, AddSubSolution, ConstraintSet) {
        let mut cs = parse_constraint_set(src).unwrap();
        for (k, x, y, z) in addsubs {
            cs.add_addsub(AddSubConstraint {
                kind: *k,
                x: dv(x),
                y: dv(y),
                z: dv(z),
            });
        }
        let mut q = ShapeQuotient::build(&cs);
        let lat = Lattice::c_types();
        let sol = apply_addsubs(&cs, &mut q, &lat);
        (q, sol, cs)
    }

    #[test]
    fn int_plus_int_is_int() {
        let (q, sol, _) = run("x <= int32; y <= int32; z <= out", &[(
            AddSubKind::Add,
            "x",
            "y",
            "z",
        )]);
        let cz = q.walk(dv("z").base(), &[]).unwrap();
        assert!(sol.mark(cz).int_like);
        assert!(!sol.mark(cz).ptr_like);
    }

    #[test]
    fn pointer_plus_int_is_pointer_and_unifies() {
        let (q, sol, _) = run(
            "p.load.σ32@0 <= int32; i <= int32",
            &[(AddSubKind::Add, "p", "i", "z")],
        );
        let cz = q.walk(dv("z").base(), &[]).unwrap();
        assert!(sol.mark(cz).ptr_like);
        // z was unified with p: it has the same pointee shape.
        assert!(q.has_var(&dv("z.load.σ32@0")));
    }

    #[test]
    fn pointer_minus_pointer_is_int() {
        let (q, sol, _) = run(
            "a.load <= x; b.load <= y",
            &[(AddSubKind::Sub, "a", "b", "d")],
        );
        let cd = q.walk(dv("d").base(), &[]).unwrap();
        assert!(sol.mark(cd).int_like);
        assert!(!sol.mark(cd).ptr_like);
    }

    #[test]
    fn int_result_propagates_back() {
        // z known int ⟹ both ADD operands are int.
        let (q, sol, _) = run("z <= int32", &[(AddSubKind::Add, "x", "y", "z")]);
        for v in ["x", "y"] {
            let c = q.walk(dv(v).base(), &[]).unwrap();
            assert!(sol.mark(c).int_like, "{v} should be int-like");
        }
    }

    #[test]
    fn ptr_result_with_int_operand_infers_other_ptr() {
        let (q, sol, _) = run(
            "z.load <= w; x <= int32",
            &[(AddSubKind::Add, "x", "y", "z")],
        );
        let cy = q.walk(dv("y").base(), &[]).unwrap();
        assert!(sol.mark(cy).ptr_like);
    }

    #[test]
    fn conflict_detection() {
        let (q, sol, _) = run(
            "x.load <= w; x <= int32",
            &[],
        );
        let cx = q.walk(dv("x").base(), &[]).unwrap();
        assert!(sol.mark(cx).conflicted());
    }
}
