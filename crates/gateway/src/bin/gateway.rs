//! `gateway` — front a fleet of `serve` backends with one address.
//!
//! ```text
//! gateway [--addr 127.0.0.1:7420] [--backends 3] [--persist-dir DIR]
//!         [--backend-cmd PATH] [--backend-arg ARG]...
//!         [--external ADDR]...
//!         [--hedge-after-ms 0] [--health-interval-ms 250]
//!         [--retry-budget 8] [--banner-file FILE]
//! ```
//!
//! Spawns `--backends` copies of the sibling `serve_backend` binary
//! (override with `--backend-cmd`), each on an ephemeral port with its
//! own `--persist-dir DIR/slot-N` store, supervises them, and serves
//! the ordinary wire protocol on `--addr`. `--external` routes to
//! already-running servers instead (repeatable; mixes with spawned).
//!
//! On readiness the gateway prints one machine-readable line on stdout:
//!
//! ```text
//! RETYPD_GATEWAY_READY addr=127.0.0.1:7420 pid=4242 backends=3
//! ```
//!
//! plus one `RETYPD_GATEWAY_BACKEND slot=… addr=… pid=…` line per
//! backend (re-echoed on restart), so scripts can find both the bound
//! front-end port and the child pids to, say, `kill -9` one mid-run.

use std::path::PathBuf;
use std::time::Duration;

use retypd_gateway::{server, BackendSpec, GatewayConfig};
use retypd_serve::RetryPolicy;

fn main() {
    std::process::exit(run(std::env::args().skip(1)));
}

fn run(args: impl IntoIterator<Item = String>) -> i32 {
    let mut config = GatewayConfig {
        addr: "127.0.0.1:7420".into(),
        echo: true,
        ..GatewayConfig::default()
    };
    let mut backends = 0usize;
    let mut backend_cmd: Option<PathBuf> = None;
    let mut backend_args: Vec<String> = Vec::new();
    let mut externals: Vec<std::net::SocketAddr> = Vec::new();
    let mut persist_dir: Option<PathBuf> = None;
    let mut banner_file: Option<PathBuf> = None;

    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| fail(&format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--addr" => config.addr = value("--addr"),
            "--backends" => backends = parse(&value("--backends"), "--backends"),
            "--backend-cmd" => backend_cmd = Some(PathBuf::from(value("--backend-cmd"))),
            "--backend-arg" => backend_args.push(value("--backend-arg")),
            "--external" => externals.push(
                value("--external")
                    .parse()
                    .unwrap_or_else(|e| fail(&format!("--external: {e}"))),
            ),
            "--persist-dir" => persist_dir = Some(PathBuf::from(value("--persist-dir"))),
            "--hedge-after-ms" => {
                let ms: u64 = parse(&value("--hedge-after-ms"), "--hedge-after-ms");
                config.hedge_after = (ms > 0).then(|| Duration::from_millis(ms));
            }
            "--health-interval-ms" => {
                config.health_interval =
                    Duration::from_millis(parse(&value("--health-interval-ms"), "--health-interval-ms"));
            }
            "--retry-budget" => {
                config.retry = RetryPolicy::new(parse(&value("--retry-budget"), "--retry-budget"));
            }
            "--banner-file" => banner_file = Some(PathBuf::from(value("--banner-file"))),
            "--help" | "-h" => {
                eprintln!("see module docs: gateway --addr ... --backends N ...");
                return 0;
            }
            other => fail(&format!("unknown flag {other:?}")),
        }
    }
    if backends == 0 && externals.is_empty() {
        backends = 3;
    }

    let mut specs: Vec<BackendSpec> = Vec::new();
    for slot in 0..backends {
        specs.push(BackendSpec::Spawn {
            program: backend_cmd.clone().unwrap_or_else(default_backend_cmd),
            args: backend_args.clone(),
            persist_dir: persist_dir.as_ref().map(|d| d.join(format!("slot-{slot}"))),
        });
    }
    for addr in externals {
        specs.push(BackendSpec::External { addr });
    }

    let handle = match server::start(config, specs) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("gateway: {e}");
            return 1;
        }
    };
    let banner = format!(
        "RETYPD_GATEWAY_READY addr={} pid={} backends={}",
        handle.addr(),
        std::process::id(),
        backends
    );
    println!("{banner}");
    use std::io::Write;
    let _ = std::io::stdout().flush();
    if let Some(path) = banner_file {
        // tmp + rename, so a reader never sees a half-written line.
        let tmp = path.with_extension("tmp");
        if std::fs::write(&tmp, format!("{banner}\n"))
            .and_then(|()| std::fs::rename(&tmp, &path))
            .is_err()
        {
            eprintln!("gateway: could not write banner file {}", path.display());
        }
    }
    handle.join();
    0
}

/// The sibling `serve_backend` executable, next to this binary.
fn default_backend_cmd() -> PathBuf {
    std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(|d| d.join("serve_backend")))
        .unwrap_or_else(|| PathBuf::from("serve_backend"))
}

fn parse<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse()
        .unwrap_or_else(|_| fail(&format!("{flag}: bad value {s:?}")))
}

fn fail(msg: &str) -> ! {
    eprintln!("gateway: {msg}");
    std::process::exit(2);
}
