//! Programs and procedures.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::isa::Inst;

/// Index of a function within a [`Program`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct FuncId(pub usize);

/// Target of a call instruction.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum CallKind {
    /// Direct call to a function in the same program.
    Direct(FuncId),
    /// Call to an external (named) function, e.g. `malloc`.
    External(String),
}

impl fmt::Display for CallKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CallKind::Direct(id) => write!(f, "f{}", id.0),
            CallKind::External(n) => f.write_str(n),
        }
    }
}

/// One procedure: a name and a flat instruction list (branch targets are
/// instruction indices).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Function {
    /// Symbol name.
    pub name: String,
    /// Instruction list.
    pub insts: Vec<Inst>,
}

impl Function {
    /// Creates a function.
    pub fn new(name: impl Into<String>, insts: Vec<Inst>) -> Function {
        Function {
            name: name.into(),
            insts,
        }
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True if the function has no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// All direct callees.
    pub fn callees(&self) -> Vec<FuncId> {
        self.insts
            .iter()
            .filter_map(|i| match i {
                Inst::Call(CallKind::Direct(id)) => Some(*id),
                _ => None,
            })
            .collect()
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}:", self.name)?;
        for (i, inst) in self.insts.iter().enumerate() {
            writeln!(f, "  L{i}: {inst}")?;
        }
        Ok(())
    }
}

/// A whole program: functions plus named global variables (address → name).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Program {
    /// All functions; [`FuncId`] indexes into this.
    pub funcs: Vec<Function>,
    /// Named global data addresses (used by the constraint generator's
    /// minimal points-to tracking for the data section).
    pub globals: BTreeMap<u32, String>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Program {
        Program::default()
    }

    /// Adds a function, returning its id.
    pub fn add(&mut self, f: Function) -> FuncId {
        self.funcs.push(f);
        FuncId(self.funcs.len() - 1)
    }

    /// Looks up a function by name.
    pub fn by_name(&self, name: &str) -> Option<FuncId> {
        self.funcs.iter().position(|f| f.name == name).map(FuncId)
    }

    /// Total instruction count (the paper's program-size measure).
    pub fn instruction_count(&self) -> usize {
        self.funcs.iter().map(|f| f.len()).sum()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for func in &self.funcs {
            writeln!(f, "{func}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Operand, Reg};

    #[test]
    fn program_roundtrip() {
        let mut p = Program::new();
        let id = p.add(Function::new(
            "main",
            vec![
                Inst::Mov {
                    dst: Reg::Eax,
                    src: Operand::Imm(0),
                },
                Inst::Ret,
            ],
        ));
        assert_eq!(p.by_name("main"), Some(id));
        assert_eq!(p.instruction_count(), 2);
        let text = p.to_string();
        assert!(text.contains("mov eax, 0x0"));
    }

    #[test]
    fn callees_listed() {
        let mut p = Program::new();
        let callee = p.add(Function::new("leaf", vec![Inst::Ret]));
        let caller = Function::new(
            "main",
            vec![
                Inst::Call(CallKind::Direct(callee)),
                Inst::Call(CallKind::External("malloc".into())),
                Inst::Ret,
            ],
        );
        assert_eq!(caller.callees(), vec![callee]);
        p.add(caller);
    }
}
