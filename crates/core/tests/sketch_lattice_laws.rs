//! Property tests: the sketches of §3.5 really do form a lattice
//! (Figure 18), with `⊑` a partial order compatible with meet and join.

use proptest::prelude::*;
use retypd_core::graph::ConstraintGraph;
use retypd_core::saturation::saturate;
use retypd_core::shapes::ShapeQuotient;
use retypd_core::{BaseVar, ConstraintSet, DerivedVar, Label, Lattice, Sketch};

/// Builds a random constraint set rooted at `f` and infers f's sketch.
fn sketch_from_seed(ops: &[(u8, u8, i32)], lattice: &Lattice) -> Sketch {
    let mut cs = ConstraintSet::new();
    let f = DerivedVar::var("f");
    cs.add_sub(
        f.clone().push(Label::in_stack(0)),
        DerivedVar::var("v0"),
    );
    for (i, &(kind, var, off)) in ops.iter().enumerate() {
        let src = DerivedVar::var(&format!("v{}", var as usize % (i + 1)));
        let dst = DerivedVar::var(&format!("v{}", i + 1));
        match kind % 5 {
            0 => cs.add_sub(
                src.push(Label::Load).push(Label::sigma(32, off.rem_euclid(5) * 4)),
                dst.clone(),
            ),
            1 => cs.add_sub(
                dst.clone(),
                src.push(Label::Store).push(Label::sigma(32, off.rem_euclid(5) * 4)),
            ),
            2 => cs.add_sub(src, dst.clone()),
            3 => cs.add_sub(src, DerivedVar::constant("int")),
            _ => cs.add_sub(DerivedVar::constant("#FileDescriptor"), src),
        }
        // Occasionally tie back to f's output for variety.
        if i % 3 == 2 {
            cs.add_sub(dst, f.clone().push(Label::out_reg("eax")));
        }
    }
    let mut g = ConstraintGraph::build(&cs);
    saturate(&mut g);
    let quotient = ShapeQuotient::build(&cs);
    let consts: Vec<BaseVar> = cs
        .base_vars()
        .into_iter()
        .filter(|b| b.is_const())
        .collect();
    Sketch::infer(BaseVar::var("f"), &g, &quotient, &lattice.clone(), &consts)
        .expect("f is mentioned")
}

fn ops_strategy() -> impl Strategy<Value = Vec<(u8, u8, i32)>> {
    proptest::collection::vec((any::<u8>(), any::<u8>(), 0..6i32), 1..8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn meet_join_laws(a_ops in ops_strategy(), b_ops in ops_strategy(), c_ops in ops_strategy()) {
        let lattice = Lattice::c_types();
        let a = sketch_from_seed(&a_ops, &lattice);
        let b = sketch_from_seed(&b_ops, &lattice);
        let c = sketch_from_seed(&c_ops, &lattice);

        // Idempotence.
        prop_assert!(a.meet(&a, &lattice).equivalent(&a, &lattice));
        prop_assert!(a.join(&a, &lattice).equivalent(&a, &lattice));
        // Commutativity.
        prop_assert!(a.meet(&b, &lattice).equivalent(&b.meet(&a, &lattice), &lattice));
        prop_assert!(a.join(&b, &lattice).equivalent(&b.join(&a, &lattice), &lattice));
        // Absorption.
        prop_assert!(a.meet(&a.join(&b, &lattice), &lattice).equivalent(&a, &lattice));
        prop_assert!(a.join(&a.meet(&b, &lattice), &lattice).equivalent(&a, &lattice));
        // Associativity of meet (join follows by duality; checked anyway).
        let m1 = a.meet(&b, &lattice).meet(&c, &lattice);
        let m2 = a.meet(&b.meet(&c, &lattice), &lattice);
        prop_assert!(m1.equivalent(&m2, &lattice));
        let j1 = a.join(&b, &lattice).join(&c, &lattice);
        let j2 = a.join(&b.join(&c, &lattice), &lattice);
        prop_assert!(j1.equivalent(&j2, &lattice));
    }

    #[test]
    fn order_is_consistent_with_ops(a_ops in ops_strategy(), b_ops in ops_strategy()) {
        let lattice = Lattice::c_types();
        let a = sketch_from_seed(&a_ops, &lattice);
        let b = sketch_from_seed(&b_ops, &lattice);
        let m = a.meet(&b, &lattice);
        let j = a.join(&b, &lattice);
        // Meet is a lower bound; join is an upper bound.
        prop_assert!(m.leq(&a, &lattice));
        prop_assert!(m.leq(&b, &lattice));
        prop_assert!(a.leq(&j, &lattice));
        prop_assert!(b.leq(&j, &lattice));
        // leq agreement: a ⊑ b ⟺ a ⊓ b ≡ a ⟺ a ⊔ b ≡ b.
        let ab = a.leq(&b, &lattice);
        prop_assert_eq!(ab, a.meet(&b, &lattice).equivalent(&a, &lattice));
        prop_assert_eq!(ab, a.join(&b, &lattice).equivalent(&b, &lattice));
        // Reflexivity and top.
        prop_assert!(a.leq(&a, &lattice));
        prop_assert!(a.leq(&Sketch::top(&lattice), &lattice));
    }
}
