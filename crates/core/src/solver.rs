//! The bottom-up, SCC-driven type inference pipeline (§4.2, Appendix F).
//!
//! Inference runs in two passes over the strongly connected components of
//! the call graph:
//!
//! 1. **`INFERPROCTYPES`** (Algorithm F.1), callees first: each SCC's
//!    combined constraint set — with callee schemes instantiated at tagged
//!    callsites (Appendix A.4) and intra-SCC calls linked monomorphically —
//!    is simplified down to a type scheme per procedure.
//! 2. **`INFERTYPES`** (Algorithm F.2), callers first: constraint sets are
//!    re-solved into sketches; each procedure's sketch is specialized to
//!    its observed uses (`REFINEPARAMETERS`, Algorithm F.3) by meeting it
//!    with the join of the actual sketches recorded at its callsites.
//!
//! Consistency checking is deferred (§3: satisfiability reduces to scalar
//! constraint checks `κ₁ <: κ₂`): violations are *reported*, never fatal,
//! which is what lets Retypd survive type-unsafe idioms (§2.6).
//!
//! Both passes are exposed as reusable per-SCC steps — [`Solver::solve_scc`]
//! and [`Solver::refine_scc`] — operating on immutable snapshots of the
//! cross-SCC state, so external drivers (e.g. `retypd-driver`) can schedule
//! independent SCCs concurrently and merge the outputs deterministically.
//! [`Solver::infer`] itself is a thin sequential composition of the two.

use std::collections::{BTreeMap, BTreeSet};
use std::time::Instant;

use crate::fxhash::FxHashMap;

use crate::addsub::apply_addsubs;
use crate::constraint::ConstraintSet;
use crate::dtv::BaseVar;
use crate::graph::ConstraintGraph;
use crate::intern::Symbol;
use crate::lattice::Lattice;
use crate::saturation::saturate;
use crate::scheme::TypeScheme;
use crate::shapes::ShapeQuotient;
use crate::simplify::SchemeBuilder;
use crate::sketch::Sketch;

/// A procedure's constraints and callsites, as produced by constraint
/// generation.
#[derive(Clone, Debug)]
pub struct Procedure {
    /// The procedure's type-variable name (also the key for its scheme).
    pub name: Symbol,
    /// Body constraints. References to callees use the tagged form
    /// `callee@tag` matching [`Callsite::tag`].
    pub constraints: ConstraintSet,
    /// Callsites within the body.
    pub callsites: Vec<Callsite>,
}

/// One callsite: an index into [`Program::procs`] plus the tag used for
/// the callee's variables in the caller's constraints.
#[derive(Clone, Debug)]
pub struct Callsite {
    /// Callee index in the program's procedure list, or `None` for an
    /// external with a pre-computed scheme.
    pub callee: CallTarget,
    /// Instantiation tag: the caller references the callee's variables as
    /// `name@tag`.
    pub tag: String,
}

/// Target of a call: an internal procedure or an external function.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CallTarget {
    /// Index into [`Program::procs`].
    Internal(usize),
    /// External function resolved via [`Program::externals`].
    External(Symbol),
}

/// A whole program: procedures, external schemes, and global variables.
#[derive(Clone, Debug, Default)]
pub struct Program {
    /// All procedures.
    pub procs: Vec<Procedure>,
    /// Pre-computed schemes for externally linked functions (e.g. `malloc`,
    /// `free`, `memcpy`, `fopen` — §2.2).
    pub externals: BTreeMap<Symbol, TypeScheme>,
    /// Global variables: never renamed during instantiation.
    pub globals: BTreeSet<BaseVar>,
    /// Name → index map maintained by [`Program::add_proc`] so by-name
    /// lookups need not rescan `procs` linearly.
    index: FxHashMap<Symbol, usize>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Program {
        Program::default()
    }

    /// Adds a procedure, returning its index. Keeps the name → index map in
    /// sync; code that pushes onto `procs` directly should go through here
    /// instead if it wants [`Program::proc_index`] to see the procedure.
    pub fn add_proc(&mut self, p: Procedure) -> usize {
        let idx = self.procs.len();
        self.index.insert(p.name, idx);
        self.procs.push(p);
        idx
    }

    /// O(1) lookup of a procedure's index by name (procedures added via
    /// [`Program::add_proc`]; on a miss falls back to a linear scan so
    /// directly-pushed procedures still resolve).
    pub fn proc_index(&self, name: Symbol) -> Option<usize> {
        if let Some(&i) = self.index.get(&name) {
            if self.procs.get(i).is_some_and(|p| p.name == name) {
                return Some(i);
            }
        }
        self.procs.iter().position(|p| p.name == name)
    }
}

/// Per-procedure inference output.
#[derive(Clone, Debug)]
pub struct ProcResult {
    /// The inferred (most general) type scheme.
    pub scheme: TypeScheme,
    /// The solved sketch for the procedure's type variable, after
    /// use-based specialization.
    pub sketch: Option<Sketch>,
    /// The most general sketch, before `REFINEPARAMETERS`.
    pub general_sketch: Option<Sketch>,
}

/// Aggregate size statistics, used by the evaluation's memory model, plus
/// timing and cache counters so driver runs are comparable to plain
/// [`Solver::infer`] runs in the committed `BENCH_*.json` trajectories.
#[derive(Clone, Copy, Debug, Default)]
pub struct SolverStats {
    /// Total constraint-graph nodes across SCC solves.
    pub graph_nodes: usize,
    /// Total constraint-graph edges across SCC solves (post saturation).
    pub graph_edges: usize,
    /// Total quotient nodes.
    pub quotient_nodes: usize,
    /// Total sketch states retained.
    pub sketch_states: usize,
    /// Total constraints processed.
    pub constraints: usize,
    /// Wall-clock nanoseconds of the solve that produced this result.
    pub solve_ns: u64,
    /// SCC solves answered from a scheme cache (0 for the plain solver;
    /// filled in by `retypd-driver`).
    pub cache_hits: u64,
    /// SCC solves that missed the scheme cache (0 for the plain solver).
    pub cache_misses: u64,
    /// Nanoseconds building + saturating constraint graphs (pass 2,
    /// including the shape quotient). Phase fields count *work performed*:
    /// the driver zeroes them in cached entries, so cache hits replay size
    /// statistics but no phase time, and the persistent store neither
    /// persists nor replays them.
    pub saturate_ns: u64,
    /// Nanoseconds extracting scalar violations via the transducer (pass 2).
    pub transducer_ns: u64,
    /// Nanoseconds simplifying type schemes (pass 1 scheme building).
    pub simplify_ns: u64,
    /// Nanoseconds inferring and refining sketches (pass 2).
    pub sketch_ns: u64,
}

impl SolverStats {
    /// Accumulates another stats record into this one (counting fields sum;
    /// `solve_ns` sums too, which is correct for per-SCC deltas that carry
    /// zero and lets callers overwrite with a measured wall-clock at the
    /// end).
    pub fn merge(&mut self, other: &SolverStats) {
        self.graph_nodes += other.graph_nodes;
        self.graph_edges += other.graph_edges;
        self.quotient_nodes += other.quotient_nodes;
        self.sketch_states += other.sketch_states;
        self.constraints += other.constraints;
        self.solve_ns += other.solve_ns;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.saturate_ns += other.saturate_ns;
        self.transducer_ns += other.transducer_ns;
        self.simplify_ns += other.simplify_ns;
        self.sketch_ns += other.sketch_ns;
    }

    /// Moves the per-phase timing fields out, zeroing them here. The driver
    /// calls this before caching an [`SccRefinement`] so a later cache hit
    /// replays the SCC's size statistics but not phase work it never did.
    pub fn take_phase_ns(&mut self) -> PhaseNs {
        let ph = PhaseNs {
            saturate_ns: self.saturate_ns,
            transducer_ns: self.transducer_ns,
            simplify_ns: self.simplify_ns,
            sketch_ns: self.sketch_ns,
        };
        self.saturate_ns = 0;
        self.transducer_ns = 0;
        self.simplify_ns = 0;
        self.sketch_ns = 0;
        ph
    }
}

/// Per-phase solve timing, split out of [`SolverStats`] for callers that
/// need to account phase work separately from replayed size statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseNs {
    /// Nanoseconds building + saturating constraint graphs.
    pub saturate_ns: u64,
    /// Nanoseconds extracting scalar violations via the transducer.
    pub transducer_ns: u64,
    /// Nanoseconds simplifying type schemes.
    pub simplify_ns: u64,
    /// Nanoseconds inferring and refining sketches.
    pub sketch_ns: u64,
}

/// Result of whole-program inference.
#[derive(Clone, Debug)]
pub struct SolverResult {
    /// Per-procedure results keyed by procedure name.
    pub procs: BTreeMap<Symbol, ProcResult>,
    /// Scalar consistency violations `(κ₁, κ₂)` where `κ₁ ⊑ κ₂` was
    /// entailed but does not hold in Λ.
    pub inconsistencies: Vec<(Symbol, Symbol)>,
    /// Size statistics for the memory model.
    pub stats: SolverStats,
}

/// Pass-1 output for one SCC: the inferred scheme per member procedure plus
/// the size of the combined constraint set that was simplified.
#[derive(Clone, Debug)]
pub struct SccSchemes {
    /// `(procedure name, inferred scheme)`, in SCC member order.
    pub schemes: Vec<(Symbol, TypeScheme)>,
    /// Number of combined constraints processed for this SCC.
    pub constraints: usize,
    /// Nanoseconds spent building these schemes (the simplify phase). Like
    /// the [`SolverStats`] phase fields, this measures work performed, so
    /// the driver counts it only on cache misses.
    pub simplify_ns: u64,
}

/// Pass-2 output for one SCC: every sketch the SCC's processing inserted
/// (procedure sketches and callsite-actual sketches), ready to be merged
/// into the global maps in SCC order.
#[derive(Clone, Debug)]
pub struct SccRefinement {
    /// Solved sketches: procedure variables (refined) and tagged callsite
    /// actuals, exactly the keys the sequential pass would have inserted.
    pub sketches: BTreeMap<BaseVar, Sketch>,
    /// Most general (pre-`REFINEPARAMETERS`) sketches per procedure.
    pub general: Vec<(Symbol, Sketch)>,
    /// Scalar violations found in this SCC's saturated graph.
    pub inconsistencies: Vec<(Symbol, Symbol)>,
    /// Size-statistics delta contributed by this SCC.
    pub stats: SolverStats,
}

/// The call-graph condensation: SCCs in reverse topological order plus the
/// cross-SCC dependency edges (Algorithm F.1/F.2's processing structure),
/// exposed so external drivers can schedule independent SCCs concurrently.
#[derive(Clone, Debug)]
pub struct Condensation {
    /// SCCs in reverse topological order (callees before callers): the
    /// pass-1 processing order.
    pub sccs: Vec<Vec<usize>>,
    /// Procedure index → index into `sccs`.
    pub scc_of: Vec<usize>,
    /// `deps[i]`: the SCCs of `sccs[i]`'s cross-SCC internal callees. Every
    /// dependency index is `< i` (reverse topological order), so pass 1 may
    /// run SCC `i` once all of `deps[i]` finished, and pass 2 (callers
    /// first) may run `i` once every SCC that depends on `i` finished.
    pub deps: Vec<BTreeSet<usize>>,
}

impl Condensation {
    /// Computes the condensation of a program's call graph.
    pub fn compute(program: &Program) -> Condensation {
        let sccs = tarjan_sccs(program);
        let mut scc_of = vec![0usize; program.procs.len()];
        for (i, scc) in sccs.iter().enumerate() {
            for &p in scc {
                scc_of[p] = i;
            }
        }
        let mut deps: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); sccs.len()];
        for (i, scc) in sccs.iter().enumerate() {
            for &p in scc {
                for cs in &program.procs[p].callsites {
                    if let CallTarget::Internal(q) = cs.callee {
                        let j = scc_of[q];
                        if j != i {
                            deps[i].insert(j);
                        }
                    }
                }
            }
        }
        Condensation { sccs, scc_of, deps }
    }

    /// Groups SCCs into dependency waves for pass 1 (callees first): wave
    /// `k` contains every SCC whose dependencies all lie in waves `< k`, so
    /// the members of one wave are mutually independent and can be solved
    /// concurrently.
    pub fn waves(&self) -> Vec<Vec<usize>> {
        let mut level = vec![0usize; self.sccs.len()];
        let mut out: Vec<Vec<usize>> = Vec::new();
        for i in 0..self.sccs.len() {
            let l = self
                .deps[i]
                .iter()
                .map(|&d| level[d] + 1)
                .max()
                .unwrap_or(0);
            level[i] = l;
            if out.len() <= l {
                out.resize(l + 1, Vec::new());
            }
            out[l].push(i);
        }
        out
    }

    /// Dependency waves for pass 2 (callers first): wave `k` contains every
    /// SCC all of whose *dependents* lie in waves `< k`.
    ///
    /// Note the concatenated waves do **not** enumerate SCCs in the exact
    /// `sccs.iter().rev()` order (an isolated SCC surfaces in wave 0
    /// regardless of its index). Merging wave outputs is nevertheless
    /// equivalent to the sequential merge because distinct SCCs write
    /// disjoint result keys — procedure names are unique per program and
    /// callsite tags are unique per callsite — and every *read* an SCC
    /// performs is of keys written by its dependents, which prior waves
    /// have fully merged. Within a wave, descending SCC order additionally
    /// matches the sequential tie-break should a degenerate program ever
    /// produce colliding keys inside one wave.
    pub fn refine_waves(&self) -> Vec<Vec<usize>> {
        // rdeps[j] = SCCs that call into j (all have index > j).
        let mut rdeps: Vec<Vec<usize>> = vec![Vec::new(); self.sccs.len()];
        for (i, ds) in self.deps.iter().enumerate() {
            for &d in ds {
                rdeps[d].push(i);
            }
        }
        let mut level = vec![0usize; self.sccs.len()];
        let mut out: Vec<Vec<usize>> = Vec::new();
        for i in (0..self.sccs.len()).rev() {
            let l = rdeps[i].iter().map(|&r| level[r] + 1).max().unwrap_or(0);
            level[i] = l;
            if out.len() <= l {
                out.resize(l + 1, Vec::new());
            }
            out[l].push(i);
        }
        // Within a wave, keep descending SCC order (the sequential rev()
        // order) so deterministic merges match the sequential solver.
        for w in &mut out {
            w.sort_unstable_by(|a, b| b.cmp(a));
        }
        out
    }
}

/// Builds the callsite-actuals index: callee name → tagged variables used
/// for that callee at every callsite in the program (`REFINEPARAMETERS`'s
/// uses-of-a-procedure relation).
pub fn callsite_actuals(program: &Program) -> BTreeMap<Symbol, Vec<BaseVar>> {
    let mut actuals: BTreeMap<Symbol, Vec<BaseVar>> = BTreeMap::new();
    for proc in &program.procs {
        for cs in &proc.callsites {
            let callee_name = match cs.callee {
                CallTarget::Internal(i) => program.procs[i].name,
                CallTarget::External(n) => n,
            };
            actuals
                .entry(callee_name)
                .or_default()
                .push(BaseVar::var(&format!("{callee_name}@{}", cs.tag)));
        }
    }
    actuals
}

/// The whole-program solver.
#[derive(Clone, Debug)]
pub struct Solver<'l> {
    lattice: &'l Lattice,
}

impl<'l> Solver<'l> {
    /// Creates a solver over the given lattice.
    pub fn new(lattice: &'l Lattice) -> Solver<'l> {
        Solver { lattice }
    }

    /// The lattice this solver marks sketches with.
    pub fn lattice(&self) -> &'l Lattice {
        self.lattice
    }

    /// Runs the two-pass pipeline on a program: sequential composition of
    /// [`Solver::solve_scc`] over the condensation in reverse topological
    /// order, then [`Solver::refine_scc`] in topological order.
    pub fn infer(&self, program: &Program) -> SolverResult {
        let start = Instant::now();
        let cond = Condensation::compute(program);
        let mut schemes: BTreeMap<Symbol, TypeScheme> = BTreeMap::new();
        for (name, scheme) in &program.externals {
            schemes.insert(*name, scheme.clone());
        }
        let mut stats = SolverStats::default();

        // ---- Pass 1: INFERPROCTYPES (callees first). ----
        for scc in &cond.sccs {
            let out = self.solve_scc(program, scc, &cond.scc_of, &schemes);
            stats.constraints += out.constraints;
            stats.simplify_ns += out.simplify_ns;
            for (name, scheme) in out.schemes {
                schemes.insert(name, scheme);
            }
        }

        // ---- Pass 2: INFERTYPES (callers first). ----
        let actuals = callsite_actuals(program);
        let mut sketches: BTreeMap<BaseVar, Sketch> = BTreeMap::new();
        let mut general: BTreeMap<Symbol, Sketch> = BTreeMap::new();
        let mut inconsistencies = Vec::new();
        for scc in cond.sccs.iter().rev() {
            let r = self.refine_scc(program, scc, &cond.scc_of, &schemes, &actuals, &sketches);
            stats.merge(&r.stats);
            inconsistencies.extend(r.inconsistencies);
            general.extend(r.general);
            sketches.extend(r.sketches);
        }

        let mut procs = BTreeMap::new();
        for proc in &program.procs {
            let pv = BaseVar::Var(proc.name);
            procs.insert(
                proc.name,
                ProcResult {
                    scheme: schemes
                        .get(&proc.name)
                        .cloned()
                        .unwrap_or_else(|| TypeScheme::empty(pv)),
                    sketch: sketches.get(&pv).cloned(),
                    general_sketch: general.get(&proc.name).cloned(),
                },
            );
        }
        inconsistencies.sort();
        inconsistencies.dedup();
        stats.solve_ns = start.elapsed().as_nanos() as u64;
        SolverResult {
            procs,
            inconsistencies,
            stats,
        }
    }

    /// Pass-1 step (`INFERPROCTYPES`, Algorithm F.1) for one SCC: combines
    /// the members' constraints with instantiated callee schemes and
    /// simplifies a type scheme per member. Reads only the `schemes`
    /// snapshot (which must contain every cross-SCC callee), so independent
    /// SCCs may run concurrently against the same snapshot.
    pub fn solve_scc(
        &self,
        program: &Program,
        scc: &[usize],
        scc_of: &[usize],
        schemes: &BTreeMap<Symbol, TypeScheme>,
    ) -> SccSchemes {
        let _span = retypd_telemetry::span("core.simplify");
        let phase_start = Instant::now();
        let builder = SchemeBuilder::new(self.lattice);
        let combined = crate::addsub::augment_with_addsubs(
            &self.scc_constraints(program, scc, scc_of, schemes),
            self.lattice,
        );
        let mut out = Vec::with_capacity(scc.len());
        for &p in scc {
            let proc = &program.procs[p];
            let mut interesting: BTreeSet<BaseVar> = program.globals.clone();
            interesting.insert(BaseVar::Var(proc.name));
            let scheme =
                builder.infer_with_interesting(BaseVar::Var(proc.name), &interesting, &combined);
            out.push((proc.name, scheme));
        }
        SccSchemes {
            schemes: out,
            constraints: combined.len(),
            simplify_ns: phase_start.elapsed().as_nanos() as u64,
        }
    }

    /// Pass-2 step (`INFERTYPES` + `REFINEPARAMETERS`, Algorithms F.2/F.3)
    /// for one SCC: re-solves the combined constraints into sketches and
    /// specializes each member by the join of the actual sketches recorded
    /// at its callsites.
    ///
    /// `sketches` is a read-only snapshot of the sketches produced by
    /// already-processed (caller-side) SCCs; insertions made while
    /// processing this SCC are layered on top (intra-SCC callsites observe
    /// them, exactly as in the sequential pass) and returned in
    /// [`SccRefinement::sketches`] for the caller to merge.
    pub fn refine_scc(
        &self,
        program: &Program,
        scc: &[usize],
        scc_of: &[usize],
        schemes: &BTreeMap<Symbol, TypeScheme>,
        actuals: &BTreeMap<Symbol, Vec<BaseVar>>,
        sketches: &BTreeMap<BaseVar, Sketch>,
    ) -> SccRefinement {
        let mut stats = SolverStats::default();
        let combined = crate::addsub::augment_with_addsubs(
            &self.scc_constraints(program, scc, scc_of, schemes),
            self.lattice,
        );
        let phase_start = Instant::now();
        let saturate_span = retypd_telemetry::span("core.saturate");
        let mut g = ConstraintGraph::build(&combined);
        saturate(&mut g);
        let mut quotient = ShapeQuotient::build(&combined);
        apply_addsubs(&combined, &mut quotient, self.lattice);
        drop(saturate_span);
        stats.saturate_ns = phase_start.elapsed().as_nanos() as u64;
        stats.graph_nodes += g.node_count();
        stats.graph_edges += g.edge_count();
        stats.quotient_nodes += quotient.node_count();
        let consts: Vec<BaseVar> = combined
            .base_vars()
            .into_iter()
            .filter(|b| b.is_const())
            .collect();
        let phase_start = Instant::now();
        let transducer_span = retypd_telemetry::span("core.transducer");
        let inconsistencies = crate::transducer::scalar_violations(&g, self.lattice);
        drop(transducer_span);
        stats.transducer_ns = phase_start.elapsed().as_nanos() as u64;
        let phase_start = Instant::now();
        let sketch_span = retypd_telemetry::span("core.sketch_infer");
        let mut overlay: BTreeMap<BaseVar, Sketch> = BTreeMap::new();
        let mut general = Vec::new();
        for &p in scc {
            let proc = &program.procs[p];
            let pv = BaseVar::Var(proc.name);
            let own = Sketch::infer(pv, &g, &quotient, self.lattice, &consts);
            if let Some(own) = own {
                stats.sketch_states += own.len();
                general.push((proc.name, own.clone()));
                // REFINEPARAMETERS: meet with the join of actual sketches
                // recorded at processed callsites.
                let mut refined = own;
                if let Some(tags) = actuals.get(&proc.name) {
                    let mut use_join: Option<Sketch> = None;
                    for a in tags {
                        if let Some(s) = overlay.get(a).or_else(|| sketches.get(a)) {
                            use_join = Some(match use_join {
                                None => s.clone(),
                                Some(u) => u.join(s, self.lattice),
                            });
                        }
                    }
                    if let Some(u) = use_join {
                        refined = refined.meet(&u, self.lattice);
                    }
                }
                overlay.insert(pv, refined);
            }
            // Record sketches for this procedure's callsite actuals so
            // lower SCCs can specialize against them.
            for csite in &proc.callsites {
                let callee_name = match csite.callee {
                    CallTarget::Internal(i) => program.procs[i].name,
                    CallTarget::External(n) => n,
                };
                let tagged = BaseVar::var(&format!("{callee_name}@{}", csite.tag));
                if let Some(s) = Sketch::infer(tagged, &g, &quotient, self.lattice, &consts) {
                    stats.sketch_states += s.len();
                    overlay.insert(tagged, s);
                }
            }
        }
        drop(sketch_span);
        stats.sketch_ns = phase_start.elapsed().as_nanos() as u64;
        SccRefinement {
            sketches: overlay,
            general,
            inconsistencies,
            stats,
        }
    }

    /// Combines the constraint sets of an SCC: bodies plus instantiated
    /// schemes for cross-SCC callees, plus monomorphic links for intra-SCC
    /// calls.
    pub fn scc_constraints(
        &self,
        program: &Program,
        scc: &[usize],
        scc_of: &[usize],
        schemes: &BTreeMap<Symbol, TypeScheme>,
    ) -> ConstraintSet {
        let mut combined = ConstraintSet::new();
        let my_scc = scc_of[scc[0]];
        for &p in scc {
            let proc = &program.procs[p];
            combined.extend(&proc.constraints);
            for csite in &proc.callsites {
                match csite.callee {
                    CallTarget::Internal(i) if scc_of[i] == my_scc => {
                        // Monomorphic within the SCC: the tagged variable is
                        // the callee itself.
                        let callee = program.procs[i].name;
                        let tagged = crate::DerivedVar::var(&format!("{callee}@{}", csite.tag));
                        let own = crate::DerivedVar::new(BaseVar::Var(callee));
                        combined.add_sub(tagged.clone(), own.clone());
                        combined.add_sub(own, tagged);
                    }
                    CallTarget::Internal(i) => {
                        if let Some(s) = schemes.get(&program.procs[i].name) {
                            let (inst, _) = s.instantiate(&csite.tag, &program.globals);
                            combined.extend(&inst);
                        }
                    }
                    CallTarget::External(n) => {
                        if let Some(s) = schemes.get(&n) {
                            let (inst, _) = s.instantiate(&csite.tag, &program.globals);
                            combined.extend(&inst);
                        }
                    }
                }
            }
        }
        combined
    }
}

/// Tarjan's strongly-connected-components algorithm over the call graph;
/// returned in reverse topological order (callees before callers), which is
/// the processing order for Pass 1.
pub fn tarjan_sccs(program: &Program) -> Vec<Vec<usize>> {
    struct State<'a> {
        program: &'a Program,
        index: Vec<Option<u32>>,
        low: Vec<u32>,
        on_stack: Vec<bool>,
        stack: Vec<usize>,
        next: u32,
        out: Vec<Vec<usize>>,
    }
    fn strongconnect(s: &mut State<'_>, v: usize) {
        s.index[v] = Some(s.next);
        s.low[v] = s.next;
        s.next += 1;
        s.stack.push(v);
        s.on_stack[v] = true;
        let callees: Vec<usize> = s.program.procs[v]
            .callsites
            .iter()
            .filter_map(|c| match c.callee {
                CallTarget::Internal(i) => Some(i),
                CallTarget::External(_) => None,
            })
            .collect();
        for w in callees {
            if s.index[w].is_none() {
                strongconnect(s, w);
                s.low[v] = s.low[v].min(s.low[w]);
            } else if s.on_stack[w] {
                s.low[v] = s.low[v].min(s.index[w].expect("indexed"));
            }
        }
        if s.low[v] == s.index[v].expect("indexed") {
            let mut scc = Vec::new();
            loop {
                let w = s.stack.pop().expect("stack nonempty");
                s.on_stack[w] = false;
                scc.push(w);
                if w == v {
                    break;
                }
            }
            scc.sort_unstable();
            s.out.push(scc);
        }
    }
    let n = program.procs.len();
    let mut st = State {
        program,
        index: vec![None; n],
        low: vec![0; n],
        on_stack: vec![false; n],
        stack: Vec::new(),
        next: 0,
        out: Vec::new(),
    };
    for v in 0..n {
        if st.index[v].is_none() {
            strongconnect(&mut st, v);
        }
    }
    st.out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_constraint_set;

    fn proc(name: &str, cs: &str, callsites: Vec<Callsite>) -> Procedure {
        Procedure {
            name: Symbol::intern(name),
            constraints: parse_constraint_set(cs).unwrap(),
            callsites,
        }
    }

    #[test]
    fn add_proc_maintains_name_index() {
        let mut prog = Program::new();
        let a = prog.add_proc(proc("alpha", "", vec![]));
        let b = prog.add_proc(proc("beta", "", vec![]));
        assert_eq!(prog.proc_index(Symbol::intern("alpha")), Some(a));
        assert_eq!(prog.proc_index(Symbol::intern("beta")), Some(b));
        assert_eq!(prog.proc_index(Symbol::intern("gamma")), None);
        // Direct pushes bypass the map; the linear fallback still resolves.
        prog.procs.push(proc("gamma", "", vec![]));
        assert_eq!(prog.proc_index(Symbol::intern("gamma")), Some(2));
    }

    #[test]
    fn sccs_respect_call_order() {
        // main → helper → leaf; leaf must come first.
        let mut prog = Program::new();
        prog.add_proc(proc(
            "main",
            "main.in_stack0 <= x",
            vec![Callsite {
                callee: CallTarget::Internal(1),
                tag: "c1".into(),
            }],
        ));
        prog.add_proc(proc(
            "helper",
            "helper.in_stack0 <= y",
            vec![Callsite {
                callee: CallTarget::Internal(2),
                tag: "c2".into(),
            }],
        ));
        prog.add_proc(proc("leaf", "leaf.out_eax <= int", vec![]));
        let sccs = tarjan_sccs(&prog);
        assert_eq!(sccs, vec![vec![2], vec![1], vec![0]]);
    }

    #[test]
    fn mutual_recursion_is_one_scc() {
        let mut prog = Program::new();
        prog.add_proc(proc(
            "even",
            "",
            vec![Callsite {
                callee: CallTarget::Internal(1),
                tag: "e".into(),
            }],
        ));
        prog.add_proc(proc(
            "odd",
            "",
            vec![Callsite {
                callee: CallTarget::Internal(0),
                tag: "o".into(),
            }],
        ));
        let sccs = tarjan_sccs(&prog);
        assert_eq!(sccs.len(), 1);
        assert_eq!(sccs[0], vec![0, 1]);
    }

    #[test]
    fn polymorphic_identity_not_unified_across_callsites() {
        // id(x) = x, called once with int-ish and once with a pointer. The
        // callsite instantiations must stay independent: the int bound from
        // one callsite must not contaminate the other.
        let lattice = Lattice::c_types();
        let mut prog = Program::new();
        prog.add_proc(proc(
            "id",
            "id.in_stack0 <= v; v <= id.out_eax",
            vec![],
        ));
        prog.add_proc(proc(
            "caller",
            "
                int32 <= id@a.in_stack0
                id@a.out_eax <= caller.out_eax
                p.load.σ32@0 <= q
                p <= id@b.in_stack0
                id@b.out_eax <= r2
            ",
            vec![
                Callsite {
                    callee: CallTarget::Internal(0),
                    tag: "a".into(),
                },
                Callsite {
                    callee: CallTarget::Internal(0),
                    tag: "b".into(),
                },
            ],
        ));
        let result = Solver::new(&lattice).infer(&prog);
        // The scheme for id is input ⊑ output, polymorphically.
        let id = &result.procs[&Symbol::intern("id")];
        let printed = id.scheme.to_string();
        assert!(printed.contains("in_stack0"), "{printed}");
        assert!(printed.contains("out_eax"), "{printed}");
        // Callsite a's int flows to caller's return...
        let caller = &result.procs[&Symbol::intern("caller")];
        let sk = caller.sketch.as_ref().expect("caller sketch");
        let out = sk
            .walk(&[crate::Label::out_reg("eax")])
            .expect("out capability");
        let (low, _) = sk.interval(out);
        assert_eq!(lattice.name(low), "int32");
        // ...but callsite b's pointer does not contaminate it: the return
        // value gained no load capability.
        assert!(sk
            .step(out, crate::Label::Load)
            .is_none());
    }

    #[test]
    fn recursive_list_walker_end_to_end() {
        // close_last-like: walks a list, returns the int handle field.
        let lattice = Lattice::c_types();
        let mut prog = Program::new();
        prog.add_proc(proc(
            "close_last",
            "
                close_last.in_stack0 <= t
                t.load.σ32@0 <= t
                t.load.σ32@4 <= #FileDescriptor
                int <= close_last.out_eax
            ",
            vec![],
        ));
        let result = Solver::new(&lattice).infer(&prog);
        let r = &result.procs[&Symbol::intern("close_last")];
        let sk = r.sketch.as_ref().expect("sketch inferred");
        let w = |s: &str| {
            crate::parse::parse_derived_var(&format!("x.{s}"))
                .unwrap()
                .path()
                .to_vec()
        };
        assert!(sk.contains_word(&w("in_stack0.load.σ32@0.load.σ32@4")));
        assert!(result.inconsistencies.is_empty());
    }

    #[test]
    fn inconsistency_reported_not_fatal() {
        let lattice = Lattice::c_types();
        let mut prog = Program::new();
        prog.add_proc(proc(
            "weird",
            "int32 <= x; x <= float32; weird.in_stack0 <= x",
            vec![],
        ));
        let result = Solver::new(&lattice).infer(&prog);
        assert!(!result.inconsistencies.is_empty());
        assert!(result.procs.contains_key(&Symbol::intern("weird")));
    }
}
