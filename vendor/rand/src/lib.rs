//! Minimal API-compatible stand-in for the `rand` crate (0.8 API).
//!
//! The build environment is offline, so this vendored shim provides the
//! subset the workspace uses: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension trait with
//! `gen`, `gen_range`, and `gen_bool`. The generator is a deterministic
//! xorshift64* stream seeded through splitmix64 — statistically fine for
//! workload generation, **not** cryptographically secure.

use std::ops::{Range, RangeInclusive};

/// Core random-number source: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (deterministic stream).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator (xorshift64* core).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 whitening so nearby seeds give unrelated streams.
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            StdRng {
                state: if z == 0 { 0xDEAD_BEEF_CAFE_F00D } else { z },
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

/// Types producible uniformly at random from an [`RngCore`].
pub trait FromRandom: Sized {
    /// Draws one uniformly random value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! from_random_int {
    ($($t:ty),*) => {$(
        impl FromRandom for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
from_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl FromRandom for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl FromRandom for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRandom for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Integer types drawable uniformly from a half-open or inclusive range.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[low, high)`. Panics if empty.
    fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[low, high]`. Panics if empty.
    fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

macro_rules! sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low < high, "cannot sample empty range");
                let span = (high as i128 - low as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (low as i128 + v as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low <= high, "cannot sample empty range");
                let span = (high as i128 - low as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (low as i128 + v as i128) as $t
            }
        }
    )*};
}
sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges a uniform value can be drawn from.
///
/// The blanket impls (mirroring real rand) let type inference unify the
/// range's element type with the expected result type.
pub trait SampleRange<T> {
    /// Draws a uniform value from `self`. Panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// Convenience extension methods over any [`RngCore`] (the rand 0.8 API).
pub trait Rng: RngCore {
    /// Draws a uniformly random value of type `T`.
    fn gen<T: FromRandom>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// Draws a uniform value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::from_rng(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}
