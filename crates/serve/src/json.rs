//! A small, dependency-free JSON document model with a writer and a
//! recursive-descent parser.
//!
//! The offline vendor set has no `serde_json` (the vendored `serde` shim is
//! declaration-only), so the wire protocol serializes through this module.
//! Design points that matter for the protocol:
//!
//! * **Lossless numbers.** [`Json::Num`] stores the number as its literal
//!   text, so `u64` nanosecond counters and fingerprints round-trip exactly
//!   (an `f64` model would corrupt values above 2⁵³).
//! * **Order-preserving objects.** Members are kept in insertion order in a
//!   `Vec`, so encode output is deterministic — responses can be compared
//!   byte-for-byte in the determinism tests.
//! * **UTF-8 passthrough.** The writer escapes only what JSON requires
//!   (quotes, backslash, control characters); constraint text full of `σ`
//!   and `⊑` stays readable on the wire. The parser accepts `\uXXXX`
//!   escapes, including surrogate pairs, for interoperability.

use std::fmt;

/// Maximum container nesting the parser accepts. The parser is recursive,
/// so without a bound a hostile peer could overflow the thread stack (and a
/// stack overflow aborts the whole process) with a frame of repeated `[`
/// bytes; 128 levels is far beyond anything the protocol emits.
pub const MAX_DEPTH: usize = 128;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, stored as its literal text (lossless round-trip).
    Num(String),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, members in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An unsigned-integer number value.
    pub fn u64(x: u64) -> Json {
        Json::Num(x.to_string())
    }

    /// A `usize` number value.
    pub fn usize(x: usize) -> Json {
        Json::Num(x.to_string())
    }

    /// A float number value (Rust's shortest-round-trip `Display` form).
    pub fn f64(x: f64) -> Json {
        if x.is_finite() {
            Json::Num(format!("{x}"))
        } else {
            // JSON has no Inf/NaN; null is the conventional stand-in.
            Json::Null
        }
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// The value as `u64`, if it is a number that parses as one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) => n.parse().ok(),
            _ => None,
        }
    }

    /// The value as `usize`, if it is a number that parses as one.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(n) => n.parse().ok(),
            _ => None,
        }
    }

    /// The value as `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => n.parse().ok(),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Object member lookup (first match; the protocol never emits
    /// duplicate keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Serializes to compact JSON text.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => out.push_str(n),
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (must consume the whole input apart from
    /// trailing whitespace).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] describing the first malformed byte.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing data after document"));
        }
        Ok(v)
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse error: what went wrong and the byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    message: String,
    offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Current container nesting, checked against [`MAX_DEPTH`].
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {what}")))
        }
    }

    fn eat_lit(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.eat_lit("null", Json::Null),
            Some(b't') => self.eat_lit("true", Json::Bool(true)),
            Some(b'f') => self.eat_lit("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.nested(Parser::array),
            Some(b'{') => self.nested(Parser::object),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    /// Runs a container parser one nesting level deeper, refusing input
    /// past [`MAX_DEPTH`] so recursion depth stays bounded.
    fn nested(
        &mut self,
        f: fn(&mut Parser<'a>) -> Result<Json, JsonError>,
    ) -> Result<Json, JsonError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH} levels")));
        }
        self.depth += 1;
        let v = f(self)?;
        self.depth -= 1;
        Ok(v)
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[', "[")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{', "{")?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', ":")?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.err("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.err("expected exponent digits"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number spans ASCII bytes");
        Ok(Json::Num(text.to_owned()))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "\"")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: a run of plain bytes, copied as UTF-8 in one go.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.escape()?);
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self) -> Result<char, JsonError> {
        let c = self.peek().ok_or_else(|| self.err("truncated escape"))?;
        self.pos += 1;
        Ok(match c {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{8}',
            b'f' => '\u{c}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => {
                let hi = self.hex4()?;
                if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair: a following \uXXXX low surrogate.
                    self.eat(b'\\', "\\ of surrogate pair")?;
                    self.eat(b'u', "u of surrogate pair")?;
                    let lo = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err(self.err("invalid low surrogate"));
                    }
                    let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    char::from_u32(code).ok_or_else(|| self.err("invalid surrogate pair"))?
                } else {
                    char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                }
            }
            _ => return Err(self.err("unknown escape")),
        })
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.peek().ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("bad hex digit in \\u escape"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for src in ["null", "true", "false", "0", "-17", "3.5", "1e9", "18446744073709551615"] {
            let v = Json::parse(src).unwrap();
            assert_eq!(v.encode(), src, "round-trip of {src}");
        }
        assert_eq!(
            Json::parse("18446744073709551615").unwrap().as_u64(),
            Some(u64::MAX),
            "u64::MAX survives (an f64 model would not)"
        );
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "line1\nσ32@0 ⊑ \"quote\"\\tab\t";
        let v = Json::Str(s.to_owned());
        let enc = v.encode();
        assert_eq!(Json::parse(&enc).unwrap(), v);
        // Foreign escapes parse too.
        assert_eq!(
            Json::parse(r#""\u00e9\ud83d\ude00""#).unwrap().as_str(),
            Some("é😀")
        );
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = Json::Obj(vec![
            ("name".into(), Json::str("corpus_0")),
            ("n".into(), Json::u64(42)),
            (
                "items".into(),
                Json::Arr(vec![Json::Null, Json::Bool(true), Json::f64(0.5)]),
            ),
            ("empty_obj".into(), Json::Obj(vec![])),
            ("empty_arr".into(), Json::Arr(vec![])),
        ]);
        let enc = v.encode();
        assert_eq!(Json::parse(&enc).unwrap(), v);
        assert_eq!(enc, Json::parse(&enc).unwrap().encode(), "deterministic");
    }

    #[test]
    fn errors_are_reported() {
        for bad in ["", "{", "[1,", "\"unterminated", "{\"a\" 1}", "tru", "01x", "1 2"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must fail");
        }
    }

    #[test]
    fn nesting_depth_is_bounded() {
        // At the limit: parses.
        let ok = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(Json::parse(&ok).is_ok());
        // One past the limit: a clean error, not deeper recursion.
        let deep = format!("{}1{}", "[".repeat(MAX_DEPTH + 1), "]".repeat(MAX_DEPTH + 1));
        let err = Json::parse(&deep).unwrap_err();
        assert!(err.to_string().contains("nesting"), "{err}");
        // The attack shape: a huge run of unclosed containers must error
        // (without the bound this overflows the stack and aborts).
        for open in ["[", "{\"k\":[", "[[{\"a\":"] {
            let bomb = open.repeat(200_000 / open.len());
            assert!(Json::parse(&bomb).is_err(), "{open:?} bomb must fail");
        }
        // Depth resets between siblings: wide-but-shallow still parses.
        let wide = format!("[{}1]", "[1],".repeat(1000));
        assert!(Json::parse(&wide).is_ok());
    }

    #[test]
    fn whitespace_tolerated() {
        let v = Json::parse(" { \"a\" : [ 1 , 2 ] , \"b\" : null } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.get("b"), Some(&Json::Null));
    }
}
