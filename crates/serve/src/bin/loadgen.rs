//! The load generator: replays a generated corpus against a server and
//! reports latency, throughput, and cache behavior as JSON.
//!
//! ```text
//! # Self-hosted (spawns an in-process server):
//! cargo run --release -p retypd-serve --bin loadgen -- --small --out serve-load.json
//! # Against an external server (CI starts `serve` in the background):
//! cargo run --release -p retypd-serve --bin loadgen -- --small --addr 127.0.0.1:7411
//! # Against a server on an ephemeral port (no fixed-port assumption:
//! # `serve --addr 127.0.0.1:0 --banner-file F` writes its bound addr there):
//! cargo run --release -p retypd-serve --bin loadgen -- --small --addr-file F
//! # Against a gateway fleet (routing/hedge counters asserted and reported):
//! cargo run --release -p retypd-serve --bin loadgen -- --small --addr-file F --gateway
//! # Protocol v2: a non-default lattice descriptor on every request:
//! cargo run --release -p retypd-serve --bin loadgen -- --small --lattice extended
//! # Protocol v2: streaming batches, measuring time-to-first-report:
//! cargo run --release -p retypd-serve --bin loadgen -- --small --stream
//! ```
//!
//! Default mode: two passes over the same corpus — cold, then warm — at a
//! target concurrency (one connection per worker thread). The warm pass
//! must be a shard-cache re-hit: the run *asserts* that the warm hit rate
//! is ≥ 90%, that warm p50 latency is strictly below cold p50, and that
//! every report from both passes is bit-identical (canonical text) to a
//! sequential in-process `Solver::infer` of the same module — so a routing
//! bug, a cache bug, or a wire round-trip bug fails the run rather than
//! skewing the numbers. With `--lattice extended` every request carries a
//! non-default descriptor, references are solved under that lattice, and
//! each report's `lattice_fp` is checked.
//!
//! Latency quantiles (p50/p95/p99) come from a `retypd-telemetry`
//! log-scale histogram the workers record into lock-free — the same
//! bucketing the server's own `metrics` endpoint uses. The default mode
//! also probes that endpoint over the live socket cold-then-warm and
//! asserts the shard/driver histograms are non-empty and grow across the
//! passes; `--metrics-text FILE` saves the server's Prometheus-style
//! exposition (CI uploads it as an artifact).
//!
//! Restart mode (`--expect-warm-start`): for a server relaunched on a
//! populated `--persist-dir`, the run instead asserts that the *first*
//! pass already runs warm — first-contact hit rate ≥ 90%, first-contact
//! p50 within 3x of the steady-state p50, and replayed store entries
//! reported by the shards — proving the store replay did its job.
//! `--retry-budget N` enables client-side retry-on-`overloaded`
//! (jittered exponential backoff, at most N retries per request).
//!
//! Gateway mode (`--gateway`): the target is a `retypd-gateway` front
//! end rather than a single server. The measurement loop is unchanged —
//! the gateway speaks the same protocol, aggregates `stats`, and merges
//! `metrics` fleet-wide, so every assertion above still applies (the
//! warm pass's ≥ 90% hit rate now proves *routing affinity*: consistent
//! hashing kept re-submissions on their warm backends). Additionally
//! the run asserts the gateway's own counters are present in the merged
//! metrics and emits a `gateway` JSON section (requests, hedge fires
//! and wins, restarts, per-backend routed counts).
//!
//! Streaming mode (`--stream`): the whole corpus is submitted as one
//! `solve_batch` per request, alternating streaming and single-frame
//! replies; the run records p50/p95 time-to-first-report versus the v1
//! whole-batch latency and *asserts* that streaming's p50 first report
//! beats the single-frame batch's p50 completion (that earliness is the
//! mode's reason to exist), with every streamed report verified against
//! the sequential references.

use std::io::Write as _;
use std::time::{Duration, Instant};

use retypd_core::sync::atomic::{AtomicUsize, Ordering};

use retypd_core::{Lattice, LatticeDescriptor, Solver};
use retypd_driver::ModuleJob;
use retypd_minic::codegen::compile;
use retypd_minic::genprog::{ClusterSpec, ProgramGenerator};
use retypd_serve::wire::WireReport;
use retypd_serve::{start, Client, RetryPolicy, ServeConfig};
use retypd_telemetry::{Histogram, HistogramSnapshot};

struct PassOutcome {
    /// Per-request latency, recorded into a log-scale histogram on the
    /// worker threads (lock-free) — p50/p95/p99 come from its quantiles,
    /// not from a sorted `Vec`, so the numbers match what the server's
    /// own `metrics` endpoint would report for the same samples.
    hist: HistogramSnapshot,
    wall: Duration,
    hits: u64,
    misses: u64,
}

/// Sorted-vec percentile, used only for the streaming mode's
/// time-to-first-report comparison (exact single-thread measurements).
fn percentile(sorted: &[u64], pct: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = (sorted.len() * pct / 100).min(sorted.len() - 1);
    sorted[idx]
}

/// Replays every job once across `concurrency` clients (one connection
/// each, work distributed by an atomic cursor), collecting per-request
/// latency and verifying each report against the sequential reference.
fn run_pass(
    addr: std::net::SocketAddr,
    jobs: &[ModuleJob],
    references: &[String],
    lattice: Option<&LatticeDescriptor>,
    expected_lattice_fp: u64,
    concurrency: usize,
    retry: Option<&RetryPolicy>,
    shard_counters: impl Fn() -> (u64, u64),
) -> PassOutcome {
    let cursor = AtomicUsize::new(0);
    let latency_hist = Histogram::new();
    let (hits0, misses0) = shard_counters();
    let start = Instant::now();
    // retypd-lint: allow(no-raw-thread) scoped spawns are not modeled
    std::thread::scope(|scope| {
        let (cursor, latency_hist) = (&cursor, &latency_hist);
        for worker in 0..concurrency.max(1) {
            // Each worker gets a distinct jitter seed so backoff
            // schedules decorrelate across connections.
            let policy = retry.map(|p| p.clone().with_seed(p.seed ^ (worker as u64 + 1)));
            scope.spawn(move || {
                let mut client = Client::connect_retry(addr, Duration::from_secs(10))
                    .expect("connect to server");
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= jobs.len() {
                        break;
                    }
                    let req_start = Instant::now();
                    let report: WireReport = match &policy {
                        Some(p) => client
                            .solve_module_retry(&jobs[i], lattice, p)
                            .expect("solve request (with retry budget)"),
                        None => client
                            .solve_module_in(&jobs[i], lattice)
                            .expect("solve request"),
                    };
                    let lat = req_start.elapsed().as_nanos() as u64;
                    assert_eq!(
                        report.canonical_text(),
                        references[i],
                        "module {} diverged from sequential Solver::infer",
                        jobs[i].name
                    );
                    assert_eq!(
                        report.lattice_fp, expected_lattice_fp,
                        "module {} solved against the wrong lattice",
                        jobs[i].name
                    );
                    latency_hist.record(lat);
                }
            });
        }
    });
    let wall = start.elapsed();
    let (hits1, misses1) = shard_counters();
    PassOutcome {
        hist: latency_hist.snapshot(),
        wall,
        hits: hits1 - hits0,
        misses: misses1 - misses0,
    }
}

fn pass_json(name: &str, p: &PassOutcome, requests: usize) -> String {
    let hit_rate = if p.hits + p.misses == 0 {
        0.0
    } else {
        p.hits as f64 / (p.hits + p.misses) as f64
    };
    format!(
        "  \"{name}\": {{\"requests\": {requests}, \"wall_ns\": {}, \
         \"throughput_rps\": {:.1}, \"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}, \
         \"max_ns\": {}, \
         \"cache_hits\": {}, \"cache_misses\": {}, \"hit_rate\": {:.3}}}",
        p.wall.as_nanos(),
        requests as f64 / p.wall.as_secs_f64().max(1e-9),
        p.hist.quantile(50, 100),
        p.hist.quantile(95, 100),
        p.hist.quantile(99, 100),
        p.hist.quantile(100, 100),
        p.hits,
        p.misses,
        hit_rate,
    )
}

/// The non-default lattice `--lattice extended` submits: c_types plus one
/// extra semantic tag. Conservative (no existing join/meet changes), so
/// sequential references still verify — while every cache key and report
/// fingerprint must differ from the default lattice's.
fn extended_lattice() -> Lattice {
    let mut b = Lattice::c_types_builder();
    b.add_under("#LoadgenTag", "int").expect("fresh tag");
    b.le("⊥", "#LoadgenTag").expect("known");
    b.set_name("c_types_loadgen");
    b.build().expect("extended c_types is a lattice")
}

/// Streaming mode: the whole corpus as one batch per request, alternating
/// the v2 streaming reply with the v1 single-frame reply, measuring time
/// to first report versus whole-batch completion. Every streamed report is
/// verified against the sequential references; the p50 first report must
/// beat the p50 single-frame batch — the earliness streaming exists for.
fn run_stream_mode(
    addr: std::net::SocketAddr,
    jobs: &[ModuleJob],
    references: &[String],
    lattice: Option<&LatticeDescriptor>,
    expected_lattice_fp: u64,
    small: bool,
) -> String {
    let mut client = Client::connect_retry(addr, Duration::from_secs(10)).expect("connect");
    let iters = if small { 12 } else { 20 };
    let mut first_ns: Vec<u64> = Vec::with_capacity(iters);
    let mut done_ns: Vec<u64> = Vec::with_capacity(iters);
    let mut batch_ns: Vec<u64> = Vec::with_capacity(iters);

    // Iteration 0 is the cold pass (it warms the shard caches and is
    // verified like every other); the latency comparison uses the warm
    // iterations only, so cold-compile noise cannot flatter either mode.
    for iter in 0..=iters {
        let t0 = Instant::now();
        let mut stream = client
            .solve_batch_stream(jobs, lattice)
            .expect("stream admitted");
        // The constructor returns once the first `report` frame arrived.
        let ttfr = t0.elapsed().as_nanos() as u64;
        let mut seen = vec![false; jobs.len()];
        while let Some(item) = stream.next() {
            let (i, report) = item.expect("streamed report");
            assert!(!std::mem::replace(&mut seen[i], true), "index {i} twice");
            assert_eq!(
                report.canonical_text(),
                references[i],
                "module {} diverged from sequential Solver::infer (streamed)",
                jobs[i].name
            );
            assert_eq!(report.lattice_fp, expected_lattice_fp);
        }
        let summary = stream.summary().expect("terminal batch_done");
        assert_eq!(summary.delivered, jobs.len());
        assert!(summary.errors.is_empty(), "{:?}", summary.errors);
        assert_eq!(summary.lattice_fp, expected_lattice_fp);
        let total = t0.elapsed().as_nanos() as u64;

        let t1 = Instant::now();
        let reports = client.solve_batch_in(jobs, lattice).expect("v1 batch");
        let v1_total = t1.elapsed().as_nanos() as u64;
        for (i, report) in reports.iter().enumerate() {
            assert_eq!(
                report.canonical_text(),
                references[i],
                "module {} diverged from sequential Solver::infer (single-frame)",
                jobs[i].name
            );
        }
        if iter > 0 {
            first_ns.push(ttfr);
            done_ns.push(total);
            batch_ns.push(v1_total);
        }
    }
    first_ns.sort_unstable();
    done_ns.sort_unstable();
    batch_ns.sort_unstable();

    let (first_p50, batch_p50) = (percentile(&first_ns, 50), percentile(&batch_ns, 50));
    assert!(
        first_p50 < batch_p50,
        "p50 time-to-first-report ({first_p50} ns) must beat the v1 whole-batch p50 \
         ({batch_p50} ns)"
    );
    eprintln!(
        "stream: first report p50 {:.3?} p95 {:.3?} | batch_done p50 {:.3?} | \
         v1 whole batch p50 {:.3?} | first report {:.2}x earlier ✓ (all reports verified ✓)",
        Duration::from_nanos(first_p50),
        Duration::from_nanos(percentile(&first_ns, 95)),
        Duration::from_nanos(percentile(&done_ns, 50)),
        Duration::from_nanos(batch_p50),
        batch_p50 as f64 / first_p50.max(1) as f64
    );

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"mode\": \"stream\", \"modules\": {}, \"iterations\": {iters}, \
         \"lattice_fp\": {expected_lattice_fp},\n",
        jobs.len()
    ));
    json.push_str(&format!(
        "  \"stream\": {{\"first_report_p50_ns\": {}, \"first_report_p95_ns\": {}, \
         \"batch_done_p50_ns\": {}, \"batch_done_p95_ns\": {}}},\n",
        first_p50,
        percentile(&first_ns, 95),
        percentile(&done_ns, 50),
        percentile(&done_ns, 95),
    ));
    json.push_str(&format!(
        "  \"single_frame\": {{\"p50_ns\": {batch_p50}, \"p95_ns\": {}}},\n",
        percentile(&batch_ns, 95),
    ));
    json.push_str(&format!(
        "  \"first_report_speedup\": {:.3}, \"verified\": true\n}}\n",
        batch_p50 as f64 / first_p50.max(1) as f64
    ));
    json
}

fn main() {
    let mut small = false;
    let mut addr_arg: Option<String> = None;
    let mut addr_file: Option<String> = None;
    let mut gateway_mode = false;
    let mut shards_arg: Option<usize> = None;
    let mut concurrency = 4usize;
    let mut out_path: Option<String> = None;
    let mut shutdown_server = false;
    let mut stream_mode = false;
    let mut retry_budget = 0u32;
    let mut expect_warm_start = false;
    let mut lattice_arg = "default".to_owned();
    let mut metrics_text_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--small" => small = true,
            "--addr" => addr_arg = args.next(),
            "--addr-file" => addr_file = args.next(),
            "--gateway" => gateway_mode = true,
            "--shutdown" => shutdown_server = true,
            "--stream" => stream_mode = true,
            "--expect-warm-start" => expect_warm_start = true,
            "--retry-budget" => {
                retry_budget = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--retry-budget expects a non-negative integer");
                        std::process::exit(2);
                    })
            }
            "--lattice" => {
                lattice_arg = args.next().unwrap_or_default();
                if lattice_arg != "default" && lattice_arg != "extended" {
                    eprintln!("--lattice expects `default` or `extended`");
                    std::process::exit(2);
                }
            }
            "--shards" => {
                shards_arg = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n| n >= 1)
                        .unwrap_or_else(|| {
                            eprintln!("--shards expects a positive integer");
                            std::process::exit(2);
                        }),
                )
            }
            "--concurrency" => {
                concurrency = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| {
                        eprintln!("--concurrency expects a positive integer");
                        std::process::exit(2);
                    })
            }
            "--out" => out_path = args.next(),
            "--metrics-text" => metrics_text_path = args.next(),
            other => {
                eprintln!(
                    "unknown argument {other}; usage: loadgen [--small] [--addr HOST:PORT] \
                     [--addr-file FILE] [--gateway] \
                     [--shards N] [--concurrency N] [--out FILE] [--shutdown] [--stream] \
                     [--lattice default|extended] [--retry-budget N] [--expect-warm-start] \
                     [--metrics-text FILE]"
                );
                std::process::exit(2);
            }
        }
    }
    // --addr-file: the target wrote its bound (possibly ephemeral) address
    // to a banner file — `serve --addr 127.0.0.1:0 --banner-file F` or
    // `gateway --banner-file F`. Wait for the file (the server may still
    // be replaying its persistent store) and take the `addr=` field from
    // its one banner line. Kills the fixed-port assumption: CI no longer
    // needs a free well-known port per job.
    if let Some(path) = &addr_file {
        if addr_arg.is_some() {
            eprintln!("--addr and --addr-file are mutually exclusive");
            std::process::exit(2);
        }
        let deadline = Instant::now() + Duration::from_secs(60);
        addr_arg = loop {
            let parsed = std::fs::read_to_string(path).ok().and_then(|text| {
                text.lines().next().and_then(|line| {
                    line.split_whitespace()
                        .find_map(|tok| tok.strip_prefix("addr=").map(str::to_owned))
                })
            });
            if let Some(a) = parsed {
                break Some(a);
            }
            if Instant::now() >= deadline {
                eprintln!("--addr-file {path}: no `addr=` banner appeared within 60s");
                std::process::exit(2);
            }
            retypd_core::sync::thread::sleep(Duration::from_millis(50));
        };
        eprintln!("addr-file {path}: target at {}", addr_arg.as_deref().unwrap());
    }
    if gateway_mode && addr_arg.is_none() {
        eprintln!("--gateway needs an external target (--addr or --addr-file)");
        std::process::exit(2);
    }
    // `--shards` only shapes the in-process server; an external server
    // keeps its own shard count, so combining the flags would silently
    // misattribute the per-shard numbers in the report. Reject before the
    // corpus generation and reference solves, which cost seconds.
    if addr_arg.is_some() && shards_arg.is_some() {
        eprintln!(
            "--shards configures the in-process server and cannot be combined with \
             --addr (the external server's own shard count applies)"
        );
        std::process::exit(2);
    }
    if expect_warm_start && stream_mode {
        eprintln!("--expect-warm-start applies to the default two-pass mode, not --stream");
        std::process::exit(2);
    }

    // --- Corpus: the same deep cluster shape as `driver_demo` (shared
    // library + per-member code + a 6-deep call chain). ---
    let spec = if small {
        ClusterSpec {
            name: "load".into(),
            members: 4,
            shared_functions: 8,
            member_functions: 3,
            seed: 7171,
            call_depth: 6,
        }
    } else {
        ClusterSpec {
            name: "load".into(),
            members: 8,
            shared_functions: 20,
            member_functions: 8,
            seed: 7171,
            call_depth: 6,
        }
    };
    let jobs: Vec<ModuleJob> = ProgramGenerator::generate_cluster(&spec)
        .iter()
        .map(|(name, module)| {
            let (mir, _) = compile(module).expect("generated module compiles");
            ModuleJob {
                name: name.clone(),
                program: retypd_congen::generate(&mir),
            }
        })
        .collect();

    // --- The lattice under test and the sequential in-process reference
    // for every module (solved under that same lattice). ---
    let (lattice, descriptor): (Lattice, Option<LatticeDescriptor>) =
        if lattice_arg == "extended" {
            let l = extended_lattice();
            let d = l.descriptor().clone();
            (l, Some(d))
        } else {
            (Lattice::c_types(), None)
        };
    let expected_lattice_fp = lattice.fingerprint();
    let references: Vec<String> = jobs
        .iter()
        .map(|j| {
            WireReport::from_result(&j.name, &Solver::new(&lattice).infer(&j.program))
                .canonical_text()
        })
        .collect();

    // --- Target server: external (`--addr`) or spawned in-process. ---
    let spawned = if addr_arg.is_none() {
        let mut config = ServeConfig {
            addr: "127.0.0.1:0".into(),
            ..ServeConfig::default()
        };
        if let Some(shards) = shards_arg {
            config.shards = shards;
        }
        Some(start(config).expect("spawn in-process server"))
    } else {
        None
    };
    let addr: std::net::SocketAddr = match (&spawned, &addr_arg) {
        (Some(handle), _) => handle.addr(),
        (None, Some(a)) => {
            use std::net::ToSocketAddrs as _;
            a.to_socket_addrs()
                .ok()
                .and_then(|mut it| it.next())
                .unwrap_or_else(|| {
                    eprintln!("--addr {a} does not resolve");
                    std::process::exit(2);
                })
        }
        (None, None) => unreachable!(),
    };

    let shard_counters = || {
        let mut client =
            Client::connect_retry(addr, Duration::from_secs(10)).expect("connect for stats");
        let stats = client.stats().expect("stats request");
        let hits: u64 = stats.shards.iter().map(|s| s.cache.hits).sum();
        let misses: u64 = stats.shards.iter().map(|s| s.cache.misses).sum();
        (hits, misses)
    };

    eprintln!(
        "corpus: {} modules, target {addr}, concurrency {concurrency}, lattice {lattice_arg}, \
         mode {}",
        jobs.len(),
        if stream_mode { "stream" } else { "per-module" }
    );

    let json = if stream_mode {
        run_stream_mode(
            addr,
            &jobs,
            &references,
            descriptor.as_ref(),
            expected_lattice_fp,
            small,
        )
    } else {
        let retry_policy = (retry_budget > 0).then(|| RetryPolicy::new(retry_budget));
        // The v2 `metrics` probe, exercised cold-then-warm: the reply must
        // round-trip over the live socket both times, with the shard solve
        // histogram non-empty after the cold pass and *grown* after the
        // warm one (an external server may carry counts from earlier runs,
        // so only deltas are asserted).
        let probe_metrics = || {
            let mut client = Client::connect_retry(addr, Duration::from_secs(10))
                .expect("connect for metrics probe");
            client.metrics().expect("metrics probe (protocol v2)")
        };
        let cold = run_pass(
            addr,
            &jobs,
            &references,
            descriptor.as_ref(),
            expected_lattice_fp,
            concurrency,
            retry_policy.as_ref(),
            &shard_counters,
        );
        eprintln!(
            "pass 1: p50 {:.3?} p95 {:.3?} p99 {:.3?} ({} hits / {} misses)",
            Duration::from_nanos(cold.hist.quantile(50, 100)),
            Duration::from_nanos(cold.hist.quantile(95, 100)),
            Duration::from_nanos(cold.hist.quantile(99, 100)),
            cold.hits,
            cold.misses
        );
        let metrics_cold = probe_metrics();
        let warm = run_pass(
            addr,
            &jobs,
            &references,
            descriptor.as_ref(),
            expected_lattice_fp,
            concurrency,
            retry_policy.as_ref(),
            &shard_counters,
        );
        eprintln!(
            "pass 2: p50 {:.3?} p95 {:.3?} p99 {:.3?} ({} hits / {} misses)",
            Duration::from_nanos(warm.hist.quantile(50, 100)),
            Duration::from_nanos(warm.hist.quantile(95, 100)),
            Duration::from_nanos(warm.hist.quantile(99, 100)),
            warm.hits,
            warm.misses
        );
        let metrics_warm = probe_metrics();

        // --- Metrics probe assertions. ---
        for (when, m) in [("cold", &metrics_cold), ("warm", &metrics_warm)] {
            for name in ["shard.solve_ns", "shard.queue_wait_ns", "driver.solve_ns"] {
                let h = m
                    .histogram(name)
                    .unwrap_or_else(|| panic!("{when} metrics reply lacks {name}"));
                assert!(
                    h.count > 0 && !h.buckets.is_empty(),
                    "{when} metrics: {name} histogram is empty"
                );
            }
        }
        let solve_count = |m: &retypd_serve::wire::WireMetrics| {
            m.histogram("shard.solve_ns").map_or(0, |h| h.count)
        };
        assert!(
            solve_count(&metrics_warm) >= solve_count(&metrics_cold) + jobs.len() as u64,
            "warm metrics probe must show the warm pass's solves: {} -> {}",
            solve_count(&metrics_cold),
            solve_count(&metrics_warm)
        );
        assert!(
            metrics_warm.counter("shard.jobs")
                >= metrics_cold.counter("shard.jobs") + jobs.len() as u64,
            "warm metrics probe must count the warm pass's jobs"
        );
        eprintln!(
            "metrics probe: cold {} solves, warm {} solves, {} histograms ✓",
            solve_count(&metrics_cold),
            solve_count(&metrics_warm),
            metrics_warm.histograms.len()
        );
        // --- Gateway mode: the merged metrics must carry the router's own
        // instruments (proof the target really is a gateway, and the place
        // the JSON report's routing/hedging numbers come from). ---
        if gateway_mode {
            assert!(
                metrics_warm.counter("gateway.requests") > 0,
                "--gateway: target's metrics lack gateway.requests — is it a plain server?"
            );
            eprintln!(
                "gateway probe: {} requests routed, {} hedges fired ({} won), \
                 {} restarts, {} reroutes ✓",
                metrics_warm.counter("gateway.requests"),
                metrics_warm.counter("gateway.hedge_fired"),
                metrics_warm.counter("gateway.hedge_won"),
                metrics_warm.counter("gateway.restarts"),
                metrics_warm.counter("gateway.reroutes"),
            );
        }

        // --- Acceptance assertions (see module docs). ---
        let warm_hit_rate = warm.hits as f64 / ((warm.hits + warm.misses) as f64).max(1.0);
        assert!(
            warm_hit_rate >= 0.9,
            "warm pass must re-hit its shard caches: hit rate {warm_hit_rate:.3}"
        );
        let (cold_p50, warm_p50) = (cold.hist.quantile(50, 100), warm.hist.quantile(50, 100));
        if expect_warm_start {
            // Restart mode: the server replayed a persisted scheme store,
            // so the *first* pass must already run warm — a high hit rate
            // on first contact and warm-class latency (pass 1 p50 within
            // 3x of pass 2's steady-state p50; a cold first pass is ~12x).
            let first_hit_rate =
                cold.hits as f64 / ((cold.hits + cold.misses) as f64).max(1.0);
            assert!(
                first_hit_rate >= 0.9,
                "--expect-warm-start: first pass must hit the replayed store: \
                 hit rate {first_hit_rate:.3}"
            );
            assert!(
                cold_p50 <= 3 * warm_p50.max(1),
                "--expect-warm-start: first-contact p50 ({cold_p50} ns) must be \
                 warm-class (≤ 3x steady-state p50 {warm_p50} ns)"
            );
            eprintln!(
                "verified: all reports bit-identical to sequential Solver::infer ✓, \
                 warm start ✓ (first-contact hit rate {:.0}%, p50 {:.2}x steady state)",
                100.0 * first_hit_rate,
                cold_p50 as f64 / warm_p50.max(1) as f64
            );
        } else {
            assert!(
                warm_p50 < cold_p50,
                "warm p50 ({warm_p50} ns) must beat cold p50 ({cold_p50} ns)"
            );
            eprintln!(
                "verified: all reports bit-identical to sequential Solver::infer ✓, \
                 warm hit rate {:.0}% ✓, warm p50 {:.2}x faster ✓",
                100.0 * warm_hit_rate,
                cold_p50 as f64 / warm_p50.max(1) as f64
            );
        }

        // --- Final per-shard stats + JSON report. ---
        let mut client =
            Client::connect_retry(addr, Duration::from_secs(10)).expect("connect");
        let stats = client.stats().expect("stats");
        if expect_warm_start {
            let replayed: u64 = stats.shards.iter().map(|s| s.replayed_entries).sum();
            assert!(
                replayed > 0,
                "--expect-warm-start: no shard reported replayed store entries"
            );
        }
        let mut json = String::from("{\n");
        json.push_str(&format!(
            "  \"modules\": {}, \"concurrency\": {concurrency}, \
             \"lattice\": \"{lattice_arg}\", \"lattice_fp\": {expected_lattice_fp}, \
             \"warm_start\": {expect_warm_start}, \"retry_budget\": {retry_budget},\n",
            jobs.len()
        ));
        json.push_str(&pass_json("cold", &cold, jobs.len()));
        json.push_str(",\n");
        json.push_str(&pass_json("warm", &warm, jobs.len()));
        json.push_str(",\n  \"shards\": [\n");
        for (i, s) in stats.shards.iter().enumerate() {
            let rate = if s.cache.hits + s.cache.misses == 0 {
                0.0
            } else {
                s.cache.hits as f64 / (s.cache.hits + s.cache.misses) as f64
            };
            json.push_str(&format!(
                "    {{\"shard\": {}, \"jobs\": {}, \"rebuilds\": {}, \"hits\": {}, \
                 \"misses\": {}, \"evictions\": {}, \"hit_rate\": {rate:.3}, \
                 \"persisted_entries\": {}, \"replayed_entries\": {}, \"replay_ns\": {}}}{}\n",
                s.shard,
                s.jobs,
                s.rebuilds,
                s.cache.hits,
                s.cache.misses,
                s.cache.evictions,
                s.persisted_entries,
                s.replayed_entries,
                s.replay_ns,
                if i + 1 == stats.shards.len() { "" } else { "," }
            ));
        }
        json.push_str("  ],\n");
        if gateway_mode {
            // Per-backend routed counts, in slot order (counter names are
            // `gateway.backend_<slot>.routed` in the merged registry).
            let mut routed: Vec<(usize, u64)> = metrics_warm
                .counters
                .iter()
                .filter_map(|(name, v)| {
                    let slot: usize = name
                        .strip_prefix("gateway.backend_")?
                        .strip_suffix(".routed")?
                        .parse()
                        .ok()?;
                    Some((slot, *v))
                })
                .collect();
            routed.sort_unstable();
            json.push_str(&format!(
                "  \"gateway\": {{\"requests\": {}, \"hedge_fired\": {}, \
                 \"hedge_won\": {}, \"reroutes\": {}, \"restarts\": {}, \
                 \"evicted\": {}, \"readded\": {}, \"routed\": [{}]}},\n",
                metrics_warm.counter("gateway.requests"),
                metrics_warm.counter("gateway.hedge_fired"),
                metrics_warm.counter("gateway.hedge_won"),
                metrics_warm.counter("gateway.reroutes"),
                metrics_warm.counter("gateway.restarts"),
                metrics_warm.counter("gateway.evicted"),
                metrics_warm.counter("gateway.readded"),
                routed
                    .iter()
                    .map(|(_, v)| v.to_string())
                    .collect::<Vec<_>>()
                    .join(", "),
            ));
        }
        json.push_str(&format!(
            "  \"accepted\": {}, \"rejected\": {}, \"verified\": true\n}}\n",
            stats.accepted, stats.rejected
        ));
        json
    };

    if let Some(p) = &metrics_text_path {
        // The server-side exposition, fetched before any shutdown so the
        // registries still carry this run's samples (CI uploads the file
        // as an artifact).
        let mut client = Client::connect_retry(addr, Duration::from_secs(10))
            .expect("connect for metrics exposition");
        let text = client.metrics_text().expect("metrics text exposition");
        std::fs::write(p, text).expect("write metrics exposition");
        eprintln!("wrote metrics exposition to {p}");
    }
    if shutdown_server {
        // Drain the external server too (CI runs it as a background
        // process and waits for a clean exit). The ack frame is required:
        // the server joins its connection handlers on drain, so delivery
        // is guaranteed, not racy.
        let mut client =
            Client::connect_retry(addr, Duration::from_secs(10)).expect("connect for shutdown");
        client.shutdown().expect("server drains");
    }
    if let Some(handle) = spawned {
        handle.shutdown();
    }
    match out_path {
        Some(p) => {
            std::fs::write(&p, &json).expect("write loadgen JSON");
            eprintln!("wrote {p}");
        }
        None => {
            std::io::stdout().write_all(json.as_bytes()).expect("stdout");
        }
    }
}
