//! Request forwarding: single-frame exchanges with a backend, plus the
//! hedged variant that races two backends and takes the first reply.
//!
//! ## Why a stateful frame reader
//!
//! `serve`'s own framing reads one frame with blocking I/O; its polled
//! variant discards partial progress on timeout, which is fine for an
//! idle-detection loop but fatal here: while a hedge is outstanding the
//! gateway alternates between *two* sockets, and a frame that arrives
//! spread across several poll ticks must accumulate. [`FrameReader`]
//! keeps the partial length prefix and payload across polls, so each
//! tick resumes exactly where the last one stopped.
//!
//! ## Duplicate-reply suppression
//!
//! A hedged request reaches two backends and both will eventually
//! answer. Exactly one reply crosses the gateway: the first *winning*
//! frame is forwarded and the losing connection is dropped on the floor
//! (never pooled — its socket still carries the duplicate reply). A
//! hedge reply only wins if it is a success kind; a fast `overloaded`
//! from the hedge target must not beat a slow-but-working primary.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use retypd_serve::wire::{self, Response, MAX_FRAME_BYTES};

/// Incremental reader for one length-prefixed frame. Feed it a stream
/// with a short read timeout; every [`FrameReader::poll`] consumes
/// whatever bytes are available and reports whether the frame completed.
#[derive(Debug, Default)]
pub struct FrameReader {
    /// The 4-byte big-endian length prefix, as received so far.
    len_buf: [u8; 4],
    /// Bytes of the length prefix received so far (0..=4).
    len_filled: usize,
    /// Payload buffer, sized once the prefix is complete.
    payload: Vec<u8>,
    /// Payload bytes received so far.
    filled: usize,
    /// Payload length, once the prefix is complete.
    expected: Option<usize>,
}

impl FrameReader {
    /// A reader with no partial progress.
    pub fn new() -> FrameReader {
        FrameReader::default()
    }

    /// Reads whatever is available. `Ok(Some(payload))` when the frame
    /// completed this tick; `Ok(None)` when the read timed out with the
    /// frame still incomplete (partial progress is kept); `Err` on EOF,
    /// an oversized frame, or a transport error.
    pub fn poll(&mut self, stream: &mut TcpStream) -> Result<Option<Vec<u8>>, String> {
        loop {
            if self.len_filled < 4 {
                match stream.read(&mut self.len_buf[self.len_filled..]) {
                    Ok(0) => return Err("connection closed mid-frame".into()),
                    Ok(n) => {
                        self.len_filled += n;
                        if self.len_filled == 4 {
                            let len = u32::from_be_bytes(self.len_buf) as usize;
                            if len > MAX_FRAME_BYTES {
                                return Err(format!("reply frame of {len} bytes exceeds cap"));
                            }
                            self.expected = Some(len);
                            self.payload = vec![0u8; len];
                            self.filled = 0;
                        }
                    }
                    Err(e) if would_block(&e) => return Ok(None),
                    Err(e) => return Err(format!("read failed: {e}")),
                }
                continue;
            }
            let expected = self.expected.expect("prefix complete implies length");
            if self.filled == expected {
                // Zero-length frames complete the instant the prefix does.
                self.len_filled = 0;
                self.expected = None;
                return Ok(Some(std::mem::take(&mut self.payload)));
            }
            match stream.read(&mut self.payload[self.filled..]) {
                Ok(0) => return Err("connection closed mid-frame".into()),
                Ok(n) => self.filled += n,
                Err(e) if would_block(&e) => return Ok(None),
                Err(e) => return Err(format!("read failed: {e}")),
            }
        }
    }
}

/// Read-timeout expiry surfaces as `WouldBlock` or `TimedOut` depending
/// on the platform; both mean "no bytes yet, frame still in flight".
fn would_block(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Who answered a (possibly hedged) exchange.
#[derive(Debug)]
pub enum Winner {
    /// The primary backend answered first (or hedging never fired).
    Primary,
    /// The hedge target answered first; its connection is returned (when
    /// still clean) so the caller can pool it for the hedge slot. The
    /// primary's connection must be discarded — it still owes a
    /// duplicate reply.
    Hedge(Option<TcpStream>),
}

/// Outcome of [`hedged_exchange`]: the winning reply frame and enough
/// bookkeeping for the caller's connection pool and hedge counters.
#[derive(Debug)]
pub struct Exchange {
    /// The winning reply frame payload, forwarded verbatim to the client.
    pub payload: Vec<u8>,
    /// Which connection won.
    pub winner: Winner,
    /// Whether the hedge timer expired and a duplicate was sent.
    pub hedged: bool,
}

/// How long each poll tick waits once two sockets are in play. Short
/// enough that the race adds at most ~a millisecond of latency to the
/// winner, long enough not to spin.
const HEDGE_POLL_TICK: Duration = Duration::from_millis(1);

/// Sends `request` on `primary` and waits for one reply frame. If
/// `hedge_after` elapses first and `open_hedge` yields a second
/// connection, the request is duplicated onto it and both sockets race;
/// the first (eligible) complete frame wins.
///
/// `open_hedge` is invoked at most once, only when the timer fires —
/// hedging costs nothing on the fast path.
pub fn hedged_exchange(
    request: &[u8],
    primary: &mut TcpStream,
    hedge_after: Option<Duration>,
    open_hedge: impl FnOnce() -> Option<TcpStream>,
    deadline: Duration,
) -> Result<Exchange, String> {
    let start = Instant::now();
    send_frame(primary, request)?;

    let mut primary_rd = FrameReader::new();
    // Phase 1: the primary alone, in one long blocking read up to the
    // hedge timer (or the full deadline when hedging is off). The common
    // case — a warm backend answering in microseconds — pays zero
    // polling overhead. A primary *failure* here fails fast into the
    // hedge (when one is allowed) rather than waiting out the timer.
    let mut primary_err: Option<String> = None;
    let phase1 = hedge_after.unwrap_or(deadline).min(deadline);
    loop {
        let elapsed = start.elapsed();
        if elapsed >= phase1 {
            break;
        }
        set_read_timeout(primary, phase1 - elapsed)?;
        match primary_rd.poll(primary) {
            Ok(Some(payload)) => {
                return Ok(Exchange {
                    payload,
                    winner: Winner::Primary,
                    hedged: false,
                })
            }
            Ok(None) => {}
            Err(e) if hedge_after.is_some() => {
                primary_err = Some(e);
                break;
            }
            Err(e) => return Err(format!("primary: {e}")),
        }
    }
    if hedge_after.is_none() || start.elapsed() >= deadline {
        return Err(format!("no reply within {deadline:?}"));
    }

    // Phase 2: the hedge timer fired (or the primary died). Duplicate
    // the request onto the hedge connection; with both sockets live,
    // alternate short polls and let the first eligible frame win.
    let mut hedge = open_hedge().and_then(|mut conn| {
        send_frame(&mut conn, request).ok()?;
        Some((conn, FrameReader::new()))
    });
    let hedged = hedge.is_some();
    if let Some(pe) = primary_err {
        // The primary is already gone: the race is the hedge alone.
        let Some((conn, rd)) = hedge else {
            return Err(format!("primary: {pe}; no hedge connection"));
        };
        return hedge_alone(conn, rd, start, deadline)
            .map(|payload| Exchange {
                payload,
                winner: Winner::Hedge(None),
                hedged,
            })
            .map_err(|he| format!("primary: {pe}; hedge: {he}"));
    }
    loop {
        if start.elapsed() >= deadline {
            return Err(format!("no reply within {deadline:?}"));
        }
        set_read_timeout(primary, HEDGE_POLL_TICK)?;
        match primary_rd.poll(primary) {
            Ok(Some(payload)) => {
                return Ok(Exchange {
                    payload,
                    winner: Winner::Primary,
                    hedged,
                })
            }
            Ok(None) => {}
            // A dead primary does not fail a hedged exchange; the race
            // continues on the hedge connection alone. (That socket is
            // consumed by the wait, so the win carries no poolable
            // stream.)
            Err(e) if hedge.is_some() => {
                let (conn, rd) = hedge.take().expect("checked");
                return hedge_alone(conn, rd, start, deadline)
                    .map(|payload| Exchange {
                        payload,
                        winner: Winner::Hedge(None),
                        hedged,
                    })
                    .map_err(|he| format!("primary: {e}; hedge: {he}"));
            }
            Err(e) => return Err(format!("primary: {e}")),
        }
        if let Some((conn, rd)) = hedge.as_mut() {
            set_read_timeout(conn, HEDGE_POLL_TICK)?;
            match rd.poll(conn) {
                Ok(Some(payload)) => {
                    if hedge_reply_wins(&payload) {
                        let (conn, _) = hedge.take().expect("checked");
                        return Ok(Exchange {
                            payload,
                            winner: Winner::Hedge(Some(conn)),
                            hedged,
                        });
                    }
                    // An overloaded/error hedge reply loses by rule: keep
                    // waiting on the primary alone.
                    hedge = None;
                }
                Ok(None) => {}
                // A dead hedge just un-hedges the exchange.
                Err(_) => hedge = None,
            }
        }
    }
}

/// Continues a hedged race after the primary died: drains the hedge
/// connection alone under the original deadline.
fn hedge_alone(
    mut conn: TcpStream,
    mut rd: FrameReader,
    start: Instant,
    deadline: Duration,
) -> Result<Vec<u8>, String> {
    loop {
        let elapsed = start.elapsed();
        if elapsed >= deadline {
            return Err(format!("no reply within {deadline:?}"));
        }
        set_read_timeout(&mut conn, deadline - elapsed)?;
        match rd.poll(&mut conn) {
            Ok(Some(payload)) => return Ok(payload),
            Ok(None) => {}
            Err(e) => return Err(e),
        }
    }
}

/// Whether a hedge reply is allowed to win the race. Success kinds win;
/// refusals and failures do not — a struggling hedge target must not
/// mask a healthy primary's answer.
fn hedge_reply_wins(payload: &[u8]) -> bool {
    matches!(
        Response::decode(payload),
        Ok(Response::Solved(_)
            | Response::Report { .. }
            | Response::BatchDone(_)
            | Response::Stats(_)
            | Response::Metrics(_)
            | Response::MetricsText(_))
    )
}

/// Writes one frame with a bounded write timeout (a wedged backend must
/// not hang the forwarder in `write_all`).
fn send_frame(stream: &mut TcpStream, payload: &[u8]) -> Result<(), String> {
    stream
        .set_write_timeout(Some(Duration::from_secs(30)))
        .map_err(|e| format!("set write timeout: {e}"))?;
    wire::write_frame(stream, payload).map_err(|e| format!("send failed: {e}"))?;
    stream.flush().map_err(|e| format!("flush failed: {e}"))
}

/// A plain (non-hedged) single-frame exchange with `deadline` to first
/// byte-complete reply. The building block for health probes, stats
/// aggregation, and metrics fan-in.
pub fn exchange(
    stream: &mut TcpStream,
    request: &[u8],
    deadline: Duration,
) -> Result<Vec<u8>, String> {
    let ex = hedged_exchange(request, stream, None, || None, deadline)?;
    Ok(ex.payload)
}

fn set_read_timeout(stream: &mut TcpStream, d: Duration) -> Result<(), String> {
    // Zero means "no timeout" to the OS; clamp up to the smallest real one.
    let d = d.max(Duration::from_millis(1));
    stream
        .set_read_timeout(Some(d))
        .map_err(|e| format!("set read timeout: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// A one-shot server thread: accepts one connection, reads one frame,
    /// optionally stalls, replies with `reply`, keeps the socket open.
    fn one_shot(reply: Vec<u8>, stall: Duration) -> std::net::SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        retypd_core::sync::thread::spawn(move || {
            let (mut conn, _) = listener.accept().expect("accept");
            let got = wire::read_frame(&mut conn).expect("read").expect("frame");
            assert!(!got.is_empty());
            retypd_core::sync::thread::sleep(stall);
            wire::write_frame(&mut conn, &reply).expect("write");
            // Hold the socket open long enough for the race to resolve.
            retypd_core::sync::thread::sleep(Duration::from_millis(500));
        });
        addr
    }

    fn stats_reply() -> Vec<u8> {
        Response::Stats(retypd_serve::wire::WireStats {
            accepted: 1,
            rejected: 0,
            queued: 0,
            queue_limit: 8,
            pid: 1,
            start_ns: 1,
            shards: vec![],
        })
        .encode()
    }

    #[test]
    fn frame_reader_survives_byte_at_a_time_delivery() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let payload = b"{\"kind\": \"shutting_down\"}".to_vec();
        let expected = payload.clone();
        retypd_core::sync::thread::spawn(move || {
            let (mut conn, _) = listener.accept().expect("accept");
            let mut frame = (payload.len() as u32).to_be_bytes().to_vec();
            frame.extend_from_slice(&payload);
            for b in frame {
                conn.write_all(&[b]).expect("write");
                conn.flush().expect("flush");
                retypd_core::sync::thread::sleep(Duration::from_millis(2));
            }
            retypd_core::sync::thread::sleep(Duration::from_millis(200));
        });
        let mut conn = TcpStream::connect(addr).expect("connect");
        let mut rd = FrameReader::new();
        let start = Instant::now();
        loop {
            conn.set_read_timeout(Some(Duration::from_millis(3))).unwrap();
            match rd.poll(&mut conn) {
                Ok(Some(got)) => {
                    assert_eq!(got, expected);
                    break;
                }
                Ok(None) => assert!(start.elapsed() < Duration::from_secs(10), "stuck"),
                Err(e) => panic!("reader failed: {e}"),
            }
        }
    }

    #[test]
    fn unhedged_exchange_round_trips() {
        let addr = one_shot(stats_reply(), Duration::ZERO);
        let mut conn = TcpStream::connect(addr).expect("connect");
        let reply = exchange(
            &mut conn,
            &wire::Request::Stats.encode(),
            Duration::from_secs(5),
        )
        .expect("exchange");
        assert!(matches!(
            Response::decode(&reply),
            Ok(Response::Stats(_))
        ));
    }

    #[test]
    fn hedge_fires_and_fast_secondary_wins() {
        // Primary stalls 2s; hedge target answers immediately. With a
        // 50ms hedge timer the exchange must finish far sooner than the
        // primary would allow, via the hedge connection.
        let slow = one_shot(stats_reply(), Duration::from_secs(2));
        let fast = one_shot(stats_reply(), Duration::ZERO);
        let mut primary = TcpStream::connect(slow).expect("connect");
        let start = Instant::now();
        let ex = hedged_exchange(
            &wire::Request::Stats.encode(),
            &mut primary,
            Some(Duration::from_millis(50)),
            || TcpStream::connect(fast).ok(),
            Duration::from_secs(10),
        )
        .expect("exchange");
        assert!(ex.hedged, "timer must have fired");
        assert!(matches!(ex.winner, Winner::Hedge(_)));
        assert!(
            start.elapsed() < Duration::from_secs(1),
            "hedge win took {:?} — raced the slow primary badly",
            start.elapsed()
        );
    }

    #[test]
    fn overloaded_hedge_reply_does_not_beat_the_primary() {
        // The hedge target instantly refuses; the primary answers after
        // 300ms. The refusal must lose and the primary's stats win.
        let primary_addr = one_shot(stats_reply(), Duration::from_millis(300));
        let refusing = one_shot(
            Response::Overloaded { queued: 8, limit: 8 }.encode(),
            Duration::ZERO,
        );
        let mut primary = TcpStream::connect(primary_addr).expect("connect");
        let ex = hedged_exchange(
            &wire::Request::Stats.encode(),
            &mut primary,
            Some(Duration::from_millis(20)),
            || TcpStream::connect(refusing).ok(),
            Duration::from_secs(10),
        )
        .expect("exchange");
        assert!(ex.hedged);
        assert!(matches!(ex.winner, Winner::Primary));
        assert!(matches!(
            Response::decode(&ex.payload),
            Ok(Response::Stats(_))
        ));
    }

    #[test]
    fn dead_primary_with_live_hedge_still_answers() {
        // Primary accepts, reads the request, then slams the connection.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let dead_addr = listener.local_addr().expect("addr");
        retypd_core::sync::thread::spawn(move || {
            let (mut conn, _) = listener.accept().expect("accept");
            let _ = wire::read_frame(&mut conn);
            drop(conn);
        });
        let live = one_shot(stats_reply(), Duration::from_millis(100));
        let mut primary = TcpStream::connect(dead_addr).expect("connect");
        let ex = hedged_exchange(
            &wire::Request::Stats.encode(),
            &mut primary,
            Some(Duration::from_millis(20)),
            || TcpStream::connect(live).ok(),
            Duration::from_secs(10),
        )
        .expect("the hedge must carry the exchange");
        assert!(matches!(ex.winner, Winner::Hedge(_)));
    }
}
