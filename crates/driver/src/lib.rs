//! # retypd-driver
//!
//! Whole-program and multi-module orchestration for the Retypd
//! reproduction: a parallel SCC-wave analysis driver with a persistent
//! scheme cache and a batch API.
//!
//! The paper's pipeline is explicitly organized around the call-graph
//! condensation: `INFERPROCTYPES` (Algorithm F.1) visits SCCs callees
//! first, `INFERTYPES` (Algorithm F.2) re-visits them callers first, and
//! `REFINEPARAMETERS` (Algorithm F.3) specializes each procedure by the
//! actual sketches observed at its callsites. Those per-SCC steps are pure
//! functions of (a) the SCC's combined constraint set and (b) the
//! cross-SCC state produced by already-processed SCCs — which is exactly
//! the shape a scheduler wants:
//!
//! * **Waves** ([`retypd_core::Condensation::waves`] /
//!   [`retypd_core::Condensation::refine_waves`]): SCCs whose dependencies
//!   are all satisfied form a wave and are dispatched to a `std::thread`
//!   worker pool. Outputs are merged *in the sequential solver's order*
//!   ([`scheduler::run_indexed`] returns results task-indexed), so the
//!   parallel result is bit-identical to [`retypd_core::Solver::infer`] —
//!   the determinism tests pin this for 1 vs N workers.
//! * **Persistent scheme cache** ([`cache::SchemeCache`]): each SCC is
//!   fingerprinted by the canonicalized constraint sets of its members,
//!   its callsite structure, and its callee-scheme fingerprints
//!   ([`fingerprint`]). The cache persists across `solve`/`solve_batch`
//!   calls on one driver, so batches containing near-duplicate modules
//!   (shared library members, re-submitted binaries) re-solve only the
//!   dirtied SCCs.
//! * **Request/session API** (the primary entry point): a
//!   [`SolveRequest`] names *which lattice* to solve against (the driver's
//!   default, a serializable [`LatticeDescriptor`], or a pre-built shared
//!   [`retypd_core::Lattice`]), the modules, and per-request options;
//!   [`AnalysisDriver::session`] resolves it into an [`AnalysisSession`]
//!   whose [`AnalysisSession::run_with`] *streams* each [`ModuleReport`]
//!   to a sink the moment its module completes (completion order) while
//!   still returning the job-ordered batch. [`AnalysisDriver::solve_batch`]
//!   and [`AnalysisDriver::solve_stream`] are thin wrappers over a
//!   default-lattice session.
//! * **Batch API** ([`AnalysisDriver::solve_batch`]): multiple modules are
//!   distributed across the same worker pool (each solved with its own
//!   wave schedule), sharing the cache.
//!
//! The driver assumes procedure names are unique within a program (as the
//! constraint generator guarantees). One driver serves *any number of
//! lattices*: every cache key mixes in the lattice's stable fingerprint
//! ([`retypd_core::Lattice::fingerprint`]), so two lattices never share
//! scheme-cache entries, and descriptor-built lattices are memoized per
//! driver so repeated requests don't rebuild the order tables.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cache;
pub mod fingerprint;
pub mod scheduler;
pub mod store;

use std::collections::BTreeMap;
use std::path::PathBuf;
use retypd_core::sync::atomic::{AtomicU64, Ordering};
use retypd_core::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use retypd_telemetry::{Counter, Histogram};

use retypd_core::dtv::BaseVar;
use retypd_core::fxhash::FxHashMap;
use retypd_core::sketch::Sketch;
use retypd_core::{
    callsite_actuals, Condensation, Lattice, LatticeDescriptor, LatticeError, ProcResult,
    Program, SccRefinement, Solver, SolverResult, SolverStats, Symbol, TypeScheme,
};

pub use cache::{CacheStats, CachedSchemes, SchemeCache};
pub use store::PersistStats;

/// Process-global driver instruments, resolved once from
/// [`retypd_telemetry::global`] so recording on the solve path is a
/// handful of lock-free atomic adds — no registry lookup per solve.
struct DriverMetrics {
    solves: Arc<Counter>,
    solve_ns: Arc<Histogram>,
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
    cache_evictions: Arc<Counter>,
    /// Replay is a construction-time event, so these are counters (they
    /// sum correctly across the many drivers of a sharded server); levels
    /// like "entries currently persisted" stay per-driver in
    /// [`PersistStats`] where they can't clobber each other.
    store_replayed: Arc<Counter>,
    store_replay_ns: Arc<Histogram>,
    store_appended: Arc<Counter>,
    store_compactions: Arc<Counter>,
}

fn driver_metrics() -> &'static DriverMetrics {
    static METRICS: OnceLock<DriverMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let g = retypd_telemetry::global();
        DriverMetrics {
            solves: g.counter("driver.solves"),
            solve_ns: g.histogram("driver.solve_ns"),
            cache_hits: g.counter("driver.cache_hits"),
            cache_misses: g.counter("driver.cache_misses"),
            cache_evictions: g.counter("driver.cache_evictions"),
            store_replayed: g.counter("driver.store_replayed_entries"),
            store_replay_ns: g.histogram("driver.store_replay_ns"),
            store_appended: g.counter("driver.store_appended_entries"),
            store_compactions: g.counter("driver.store_compactions"),
        }
    })
}

/// Driver configuration.
#[derive(Clone, Debug)]
pub struct DriverConfig {
    /// Worker threads for wave dispatch and batch distribution. `1` makes
    /// the driver fully sequential (still cache-enabled).
    pub workers: usize,
    /// Maximum entries retained per cache pass (pass-1 schemes and pass-2
    /// refinements are bounded independently); the least-recently-hit entry
    /// is evicted beyond it. `None` (the default) never evicts — right for
    /// one-shot batch runs, wrong for a resident service, which is why
    /// `retypd-serve` always sets a bound.
    pub cache_capacity: Option<usize>,
    /// Path of the persistent scheme-store log ([`store`]). `Some` makes
    /// cache inserts append to the log (asynchronously, off the solve
    /// path) and driver construction replay it, so a restarted process
    /// answers previously-seen modules from warm fingerprint hits. `None`
    /// (the default) keeps the cache process-lifetime only.
    pub persist_path: Option<PathBuf>,
}

impl DriverConfig {
    /// The default configuration with an explicit worker count.
    pub fn with_workers(workers: usize) -> DriverConfig {
        DriverConfig {
            workers,
            ..DriverConfig::default()
        }
    }
}

impl Default for DriverConfig {
    fn default() -> DriverConfig {
        DriverConfig {
            workers: retypd_core::sync::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            cache_capacity: None,
            persist_path: None,
        }
    }
}

/// One module of a batch: a named constraint program.
#[derive(Clone, Debug)]
pub struct ModuleJob {
    /// Module name (reporting only).
    pub name: String,
    /// The module's constraint program.
    pub program: Program,
}

impl ModuleJob {
    /// Stable content fingerprint of the module's program (the name is
    /// deliberately excluded: a renamed re-submission of the same binary is
    /// the same content). `retypd-serve` routes modules to shards by this
    /// value, so identical modules always land on the same warm cache.
    pub fn fingerprint(&self) -> u64 {
        fingerprint::program_fp(&self.program)
    }
}

/// Per-module batch output.
#[derive(Clone, Debug)]
pub struct ModuleReport {
    /// Module name.
    pub name: String,
    /// Fingerprint of the lattice this module was solved against
    /// ([`retypd_core::Lattice::fingerprint`]) — the cache-segregation
    /// evidence a streaming consumer can check per report.
    pub lattice_fp: u64,
    /// The inference result; `result.stats` carries this module's
    /// `solve_ns` and cache hit/miss counters.
    pub result: SolverResult,
    /// Wall-clock time of this module's solve.
    pub wall: Duration,
}

/// Which lattice Λ a [`SolveRequest`] solves against.
#[derive(Clone, Debug, Default)]
pub enum LatticeSelector {
    /// The driver's own lattice (the one it was constructed with).
    #[default]
    Default,
    /// A lattice described as data; the driver builds and memoizes it.
    /// This is what a wire request's `lattice` field resolves to.
    Descriptor(LatticeDescriptor),
    /// A pre-built lattice shared with the caller (no build cost, no memo
    /// entry) — e.g. one the serving layer already validated and built.
    Shared(Arc<Lattice>),
}

/// Per-request knobs of a [`SolveRequest`].
#[derive(Clone, Copy, Debug, Default)]
pub struct SolveOptions {
    /// Worker-thread override for this request; `None` uses the driver's
    /// configured count.
    pub workers: Option<usize>,
}

/// A typed analysis request: which lattice, which modules, which options.
/// Resolve it with [`AnalysisDriver::session`].
#[derive(Clone, Debug)]
pub struct SolveRequest<'j> {
    /// The lattice to solve against.
    pub lattice: LatticeSelector,
    /// The modules to solve, in submission order.
    pub modules: &'j [ModuleJob],
    /// Request options.
    pub options: SolveOptions,
}

impl<'j> SolveRequest<'j> {
    /// A default-lattice, default-options request over `modules`.
    pub fn batch(modules: &'j [ModuleJob]) -> SolveRequest<'j> {
        SolveRequest {
            lattice: LatticeSelector::Default,
            modules,
            options: SolveOptions::default(),
        }
    }

    /// Selects the lattice to solve against.
    #[must_use]
    pub fn with_lattice(mut self, lattice: LatticeSelector) -> SolveRequest<'j> {
        self.lattice = lattice;
        self
    }

    /// Overrides the worker count for this request.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> SolveRequest<'j> {
        self.options.workers = Some(workers);
        self
    }
}

/// How a session holds its resolved lattice.
enum SessionLattice<'d> {
    Borrowed(&'d Lattice),
    Owned(Arc<Lattice>),
}

/// A resolved [`SolveRequest`]: the lattice is built/validated, the worker
/// count fixed. [`AnalysisSession::run_with`] delivers each module's
/// [`ModuleReport`] to a sink the moment it completes — the streaming
/// primitive under `retypd-serve`'s `solve_batch` streaming mode — and
/// returns the full batch in job order; [`AnalysisSession::run`] is the
/// collect-only form.
pub struct AnalysisSession<'d, 'j> {
    driver: &'d AnalysisDriver<'d>,
    lattice: SessionLattice<'d>,
    lattice_fp: u64,
    modules: &'j [ModuleJob],
    workers: usize,
}

impl AnalysisSession<'_, '_> {
    /// The lattice this session solves against.
    pub fn lattice(&self) -> &Lattice {
        match &self.lattice {
            SessionLattice::Borrowed(l) => l,
            SessionLattice::Owned(l) => l,
        }
    }

    /// The session lattice's stable fingerprint (mixed into every cache
    /// key this session touches).
    pub fn lattice_fingerprint(&self) -> u64 {
        self.lattice_fp
    }

    /// The modules this session will solve.
    pub fn modules(&self) -> &[ModuleJob] {
        self.modules
    }

    /// The resolved worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Solves the request, collecting reports in job order.
    pub fn run(&self) -> Vec<ModuleReport> {
        self.run_with(|_, _| {})
    }

    /// Solves the request, delivering `(index, report)` to `sink` on the
    /// worker thread the moment each module completes (completion order —
    /// use the index to reassemble submission order), and returns the
    /// job-ordered reports. Modules are distributed across the worker
    /// pool; with spare workers and few modules, parallelism moves inside
    /// each module's wave schedule instead. All requests share the
    /// driver's persistent cache, segregated by lattice fingerprint.
    pub fn run_with(&self, sink: impl Fn(usize, &ModuleReport) + Sync) -> Vec<ModuleReport> {
        let jobs = self.modules;
        let workers = self.workers;
        let inner = if jobs.len() >= workers { 1 } else { workers };
        let lattice = self.lattice();
        scheduler::run_indexed_observed(
            jobs.len(),
            workers,
            |i| {
                let start = Instant::now();
                let result =
                    self.driver
                        .solve_program(lattice, self.lattice_fp, &jobs[i].program, inner);
                ModuleReport {
                    name: jobs[i].name.clone(),
                    lattice_fp: self.lattice_fp,
                    result,
                    wall: start.elapsed(),
                }
            },
            |i, report| sink(i, report),
        )
    }
}

/// How a driver holds its lattice: borrowed from the caller (the classic
/// in-process shape) or owned (the `'static`, `Send`-able shape a shard
/// thread needs to carry the driver across a `std::thread::spawn`).
enum LatticeHandle<'l> {
    Borrowed(&'l Lattice),
    Owned(Arc<Lattice>),
}

impl LatticeHandle<'_> {
    fn get(&self) -> &Lattice {
        match self {
            LatticeHandle::Borrowed(l) => l,
            LatticeHandle::Owned(l) => l,
        }
    }
}

/// The analysis driver: owns scheduling and caching around
/// [`retypd_core::Solver`].
pub struct AnalysisDriver<'l> {
    lattice: LatticeHandle<'l>,
    config: DriverConfig,
    cache: SchemeCache,
    /// Descriptor-built lattices, memoized so a stream of requests naming
    /// the same lattice builds it once.
    lattices: LatticeMemo,
    /// The persistent scheme store, when [`DriverConfig::persist_path`] is
    /// set and the path is usable (open failure degrades to in-memory-only
    /// caching with a warning — persistence is an accelerator, never a
    /// precondition).
    store: Option<store::SchemeStore>,
}

/// A bounded, thread-safe memo of descriptor-built lattices, keyed by
/// descriptor fingerprint. Past its capacity the memo is cleared
/// wholesale — rebuilding a lattice is cheap, an unbounded map under a
/// hostile stream of distinct descriptors is not. Each driver keeps one;
/// `retypd-serve` shares one server-wide across shards.
#[derive(Debug, Default)]
pub struct LatticeMemo {
    map: Mutex<FxHashMap<u64, Arc<Lattice>>>,
}

/// Entries retained before a [`LatticeMemo`] clears itself.
const LATTICE_MEMO_CAP: usize = 64;

impl LatticeMemo {
    /// An empty memo.
    pub fn new() -> LatticeMemo {
        LatticeMemo::default()
    }

    /// Returns the memoized lattice for `descriptor`, building (and
    /// validating) it on first sight.
    ///
    /// # Errors
    ///
    /// Fails when the descriptor does not describe a valid lattice.
    pub fn get_or_build(
        &self,
        descriptor: &LatticeDescriptor,
    ) -> Result<Arc<Lattice>, LatticeError> {
        let key = descriptor.fingerprint();
        if let Some(l) = self.map.lock().expect("lattice memo").get(&key) {
            return Ok(Arc::clone(l));
        }
        let built = Arc::new(descriptor.build()?);
        let mut memo = self.map.lock().expect("lattice memo");
        if memo.len() >= LATTICE_MEMO_CAP {
            memo.clear();
        }
        Ok(Arc::clone(memo.entry(key).or_insert(built)))
    }
}

impl<'l> AnalysisDriver<'l> {
    /// A driver with the default configuration (all available cores).
    pub fn new(lattice: &'l Lattice) -> AnalysisDriver<'l> {
        AnalysisDriver::with_config(lattice, DriverConfig::default())
    }

    /// A driver with an explicit configuration.
    pub fn with_config(lattice: &'l Lattice, config: DriverConfig) -> AnalysisDriver<'l> {
        AnalysisDriver::build(LatticeHandle::Borrowed(lattice), config)
    }

    /// A driver that owns its lattice, giving it a `'static` lifetime so it
    /// can move into a long-lived shard thread (`retypd-serve`'s shard pool
    /// builds one of these per shard). Results are identical to a borrowed
    /// construction with an equal lattice.
    pub fn owned(lattice: Lattice, config: DriverConfig) -> AnalysisDriver<'static> {
        AnalysisDriver::build(LatticeHandle::Owned(Arc::new(lattice)), config)
    }

    /// The shared constructor: builds the cache, then (if configured)
    /// opens the persistent store, which replays its log *into* the cache
    /// before the driver ever sees a request — that is the warm-restart
    /// fast path.
    fn build<'x>(lattice: LatticeHandle<'x>, config: DriverConfig) -> AnalysisDriver<'x> {
        let cache = SchemeCache::with_capacity(config.cache_capacity);
        let lattices = LatticeMemo::new();
        let store = config.persist_path.as_deref().and_then(|path| {
            let _span = retypd_telemetry::span("driver.store_replay");
            match store::SchemeStore::open(path, lattice.get(), &lattices, &cache) {
                Ok(s) => {
                    let p = s.stats();
                    let m = driver_metrics();
                    m.store_replayed.add(p.replayed_entries);
                    m.store_replay_ns.record(p.replay_ns);
                    Some(s)
                }
                Err(e) => {
                    eprintln!(
                        "scheme store {}: persistence disabled (open failed: {e})",
                        path.display()
                    );
                    None
                }
            }
        });
        AnalysisDriver {
            lattice,
            config,
            cache,
            lattices,
            store,
        }
    }

    /// The lattice this driver solves against.
    pub fn lattice(&self) -> &Lattice {
        self.lattice.get()
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.config.workers.max(1)
    }

    /// Cumulative cache counters (across every solve this driver ran).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Counters of the persistent scheme store; `None` when the driver
    /// runs without persistence (no [`DriverConfig::persist_path`], or the
    /// path was unusable at construction).
    pub fn persist_stats(&self) -> Option<PersistStats> {
        self.store.as_ref().map(|s| s.stats())
    }

    /// Blocks until every pending store append has been flushed to the OS.
    /// No-op without a store. `retypd-serve`'s panic-rebuild path calls
    /// this on the wounded driver so the replacement's replay sees every
    /// entry the old driver solved.
    pub fn flush_store(&self) {
        if let Some(s) = &self.store {
            s.flush();
        }
    }

    /// Forces a store compaction (snapshot rewrite + atomic rename) and
    /// waits for it to land. No-op without a store.
    pub fn compact_store(&self) {
        if let Some(s) = &self.store {
            s.compact();
        }
    }

    /// Resolves a [`SolveRequest`] into an [`AnalysisSession`]: the lattice
    /// selector is validated and built (descriptor-built lattices are
    /// memoized per driver), and the worker count fixed. This is the
    /// primary entry point; `solve_batch`/`solve_stream` wrap it.
    ///
    /// # Errors
    ///
    /// Fails when a [`LatticeSelector::Descriptor`] does not describe a
    /// valid lattice.
    pub fn session<'d, 'j>(
        &'d self,
        request: SolveRequest<'j>,
    ) -> Result<AnalysisSession<'d, 'j>, LatticeError> {
        let (lattice, lattice_fp) = match request.lattice {
            LatticeSelector::Default => {
                let l = self.lattice();
                (SessionLattice::Borrowed(l), l.fingerprint())
            }
            LatticeSelector::Shared(l) => {
                let fp = l.fingerprint();
                (SessionLattice::Owned(l), fp)
            }
            LatticeSelector::Descriptor(d) => {
                let l = self.lattice_for(&d)?;
                let fp = l.fingerprint();
                (SessionLattice::Owned(l), fp)
            }
        };
        Ok(AnalysisSession {
            driver: self,
            lattice,
            lattice_fp,
            modules: request.modules,
            workers: request.options.workers.unwrap_or_else(|| self.workers()).max(1),
        })
    }

    /// Builds (or returns the memoized) lattice for a descriptor.
    ///
    /// # Errors
    ///
    /// Fails when the descriptor does not describe a valid lattice.
    pub fn lattice_for(&self, descriptor: &LatticeDescriptor) -> Result<Arc<Lattice>, LatticeError> {
        self.lattices.get_or_build(descriptor)
    }

    /// Solves one program with the configured worker count.
    pub fn solve(&self, program: &Program) -> SolverResult {
        self.solve_with_workers(program, self.workers())
    }

    /// Solves a batch of modules against the default lattice. Modules are
    /// independent, so they are distributed across the worker pool (each
    /// module's own wave schedule then runs on the thread it landed on);
    /// all of them share this driver's persistent cache, which is where
    /// the incremental win on near-duplicate corpora comes from. Reports
    /// come back in job order. Thin wrapper over [`AnalysisDriver::session`].
    pub fn solve_batch(&self, jobs: &[ModuleJob]) -> Vec<ModuleReport> {
        self.session(SolveRequest::batch(jobs))
            .expect("the default lattice is always valid")
            .run()
    }

    /// [`AnalysisDriver::solve_batch`] with incremental delivery: `sink`
    /// receives `(index, report)` the moment each module completes, in
    /// completion order. Thin wrapper over [`AnalysisDriver::session`].
    pub fn solve_stream(
        &self,
        jobs: &[ModuleJob],
        sink: impl Fn(usize, &ModuleReport) + Sync,
    ) -> Vec<ModuleReport> {
        self.session(SolveRequest::batch(jobs))
            .expect("the default lattice is always valid")
            .run_with(sink)
    }

    /// The wave-scheduled two-pass solve over the *default* lattice.
    /// `workers = 1` degenerates to the sequential order; any worker count
    /// produces bit-identical results because wave outputs are merged in
    /// the sequential solver's SCC order.
    pub fn solve_with_workers(&self, program: &Program, workers: usize) -> SolverResult {
        let lattice = self.lattice();
        self.solve_program(lattice, lattice.fingerprint(), program, workers)
    }

    /// The solve primitive every session and wrapper funnels into: one
    /// program, an explicit lattice, and that lattice's fingerprint (mixed
    /// into every cache key — see [`fingerprint::scc_fingerprint`]).
    fn solve_program(
        &self,
        lattice: &Lattice,
        lattice_fp: u64,
        program: &Program,
        workers: usize,
    ) -> SolverResult {
        let _solve_span = retypd_telemetry::span("driver.solve");
        let metrics = driver_metrics();
        let before_cache = self.cache.stats();
        let before_persist = self.persist_stats().unwrap_or_default();
        let start = Instant::now();
        let solver = Solver::new(lattice);
        let cond = Condensation::compute(program);
        let hits = AtomicU64::new(0);
        let misses = AtomicU64::new(0);
        // Per-phase work performed by *this* solve, accumulated from cache
        // misses only: cached entries had their phase fields taken before
        // insertion (see below), so a fully warm solve reports zero phase
        // time — the breakdown measures work done, not work remembered.
        let saturate_ns = AtomicU64::new(0);
        let transducer_ns = AtomicU64::new(0);
        let simplify_ns = AtomicU64::new(0);
        let sketch_ns = AtomicU64::new(0);

        // Cross-SCC state, updated between waves only.
        let mut schemes: BTreeMap<Symbol, TypeScheme> = BTreeMap::new();
        let mut scheme_fps: BTreeMap<Symbol, u64> = BTreeMap::new();
        for (name, scheme) in &program.externals {
            schemes.insert(*name, scheme.clone());
            scheme_fps.insert(*name, fingerprint::scheme_fp(scheme));
        }
        let mut stats = SolverStats::default();
        let mut scc_fps: Vec<u64> = vec![0; cond.sccs.len()];

        // ---- Pass 1: INFERPROCTYPES, one wave of independent SCCs at a
        // time (callees first). ----
        for wave in cond.waves() {
            let _wave_span = retypd_telemetry::span("driver.wave");
            let outputs = scheduler::run_indexed(wave.len(), workers, |k| {
                let i = wave[k];
                let scc = &cond.sccs[i];
                let fp = fingerprint::scc_fingerprint(
                    lattice_fp,
                    program,
                    scc,
                    &cond.scc_of,
                    &scheme_fps,
                );
                let entry = match self.cache.lookup_schemes(fp) {
                    Some(cached) => {
                        hits.fetch_add(1, Ordering::Relaxed);
                        cached
                    }
                    None => {
                        misses.fetch_add(1, Ordering::Relaxed);
                        let out = {
                            let _span = retypd_telemetry::span("driver.scc_solve");
                            solver.solve_scc(program, scc, &cond.scc_of, &schemes)
                        };
                        simplify_ns.fetch_add(out.simplify_ns, Ordering::Relaxed);
                        // With persistence on, render each scheme's
                        // canonical parts once and share the strings with
                        // the store's writer — the fingerprint covers
                        // exactly the text that gets persisted, and the
                        // writer never renders a scheme itself.
                        let mut texts = self.store.as_ref().map(|_| Vec::new());
                        let entry = Arc::new(CachedSchemes {
                            schemes: out
                                .schemes
                                .into_iter()
                                .map(|(n, s)| {
                                    let fp = match &mut texts {
                                        Some(texts) => {
                                            let t = store::SchemeText {
                                                subject: s.subject().to_string(),
                                                constraints: s.constraints().to_string(),
                                            };
                                            let fp = fingerprint::scheme_fp_parts(
                                                &t.subject,
                                                s.existentials(),
                                                &t.constraints,
                                            );
                                            texts.push(t);
                                            fp
                                        }
                                        None => fingerprint::scheme_fp(&s),
                                    };
                                    (n, s, fp)
                                })
                                .collect(),
                            constraints: out.constraints,
                        });
                        let evicted = self.cache.insert_schemes(fp, entry.clone());
                        if let Some(store) = &self.store {
                            store.record_schemes(fp, &entry, texts.unwrap_or_default(), evicted);
                        }
                        entry
                    }
                };
                (fp, entry)
            });
            // Deterministic merge: waves are emitted in ascending SCC order,
            // matching the sequential pass-1 loop.
            for (k, (fp, entry)) in outputs.into_iter().enumerate() {
                scc_fps[wave[k]] = fp;
                stats.constraints += entry.constraints;
                for (name, scheme, sfp) in &entry.schemes {
                    schemes.insert(*name, scheme.clone());
                    scheme_fps.insert(*name, *sfp);
                }
            }
        }

        // ---- Pass 2: INFERTYPES + REFINEPARAMETERS, wave-scheduled over
        // the reversed condensation (callers first). ----
        let actuals = callsite_actuals(program);
        let mut sketches: BTreeMap<BaseVar, Sketch> = BTreeMap::new();
        let mut general: BTreeMap<Symbol, Sketch> = BTreeMap::new();
        let mut inconsistencies: Vec<(Symbol, Symbol)> = Vec::new();
        for wave in cond.refine_waves() {
            let _wave_span = retypd_telemetry::span("driver.wave");
            let outputs = scheduler::run_indexed(wave.len(), workers, |k| {
                let i = wave[k];
                let scc = &cond.sccs[i];
                let fp2 = fingerprint::refine_fingerprint(
                    scc_fps[i],
                    program,
                    scc,
                    &actuals,
                    &sketches,
                );
                match self.cache.lookup_refine(fp2) {
                    Some(cached) => {
                        hits.fetch_add(1, Ordering::Relaxed);
                        cached
                    }
                    None => {
                        misses.fetch_add(1, Ordering::Relaxed);
                        let mut fresh = {
                            let _span = retypd_telemetry::span("driver.scc_refine");
                            solver.refine_scc(
                                program,
                                scc,
                                &cond.scc_of,
                                &schemes,
                                &actuals,
                                &sketches,
                            )
                        };
                        // Strip the phase breakdown *before* the entry is
                        // cached (and persisted): a later cache hit replays
                        // the result, not the work, so hits must contribute
                        // zero phase time. This solve keeps the stripped
                        // values through the accumulators.
                        let phases = fresh.stats.take_phase_ns();
                        saturate_ns.fetch_add(phases.saturate_ns, Ordering::Relaxed);
                        transducer_ns.fetch_add(phases.transducer_ns, Ordering::Relaxed);
                        simplify_ns.fetch_add(phases.simplify_ns, Ordering::Relaxed);
                        sketch_ns.fetch_add(phases.sketch_ns, Ordering::Relaxed);
                        let r = Arc::new(fresh);
                        let evicted = self.cache.insert_refine(fp2, r.clone());
                        if let Some(store) = &self.store {
                            store.record_refine(fp2, lattice, lattice_fp, &r, evicted);
                        }
                        r
                    }
                }
            });
            // Merging per wave is equivalent to the sequential merge:
            // distinct SCCs write disjoint keys (unique procedure names and
            // callsite tags), and reads only target keys that earlier
            // (dependent) waves fully merged — see
            // `Condensation::refine_waves`.
            for r in &outputs {
                let r: &SccRefinement = r;
                stats.merge(&r.stats);
                inconsistencies.extend(r.inconsistencies.iter().cloned());
                general.extend(r.general.iter().cloned());
                for (k, v) in &r.sketches {
                    sketches.insert(k.clone(), v.clone());
                }
            }
        }

        // ---- Deterministic reduction into the result shape. ----
        let mut procs = BTreeMap::new();
        for proc in &program.procs {
            let pv = BaseVar::Var(proc.name);
            procs.insert(
                proc.name,
                ProcResult {
                    scheme: schemes
                        .get(&proc.name)
                        .cloned()
                        .unwrap_or_else(|| TypeScheme::empty(pv)),
                    sketch: sketches.get(&pv).cloned(),
                    general_sketch: general.get(&proc.name).cloned(),
                },
            );
        }
        inconsistencies.sort();
        inconsistencies.dedup();
        // The store's end-of-solve hook hands over buffered records and
        // checks compaction here (not on the insert path), so eviction
        // churn within one solve triggers at most one rewrite.
        if let Some(store) = &self.store {
            store.solve_finished();
        }
        stats.solve_ns = start.elapsed().as_nanos() as u64;
        stats.cache_hits = hits.load(Ordering::Relaxed);
        stats.cache_misses = misses.load(Ordering::Relaxed);
        // `stats.merge` above only ever added zeros for the phase fields
        // (cached and fresh entries alike are stripped), so assignment is
        // the whole story: misses' work this solve, nothing remembered.
        stats.saturate_ns = saturate_ns.load(Ordering::Relaxed);
        stats.transducer_ns = transducer_ns.load(Ordering::Relaxed);
        stats.simplify_ns = simplify_ns.load(Ordering::Relaxed);
        stats.sketch_ns = sketch_ns.load(Ordering::Relaxed);
        metrics.solves.inc();
        metrics.solve_ns.record(stats.solve_ns);
        metrics.cache_hits.add(stats.cache_hits);
        metrics.cache_misses.add(stats.cache_misses);
        let after_cache = self.cache.stats();
        metrics
            .cache_evictions
            .add(after_cache.evictions.saturating_sub(before_cache.evictions));
        if let Some(after_persist) = self.persist_stats() {
            metrics.store_appended.add(
                after_persist
                    .appended_entries
                    .saturating_sub(before_persist.appended_entries),
            );
            metrics.store_compactions.add(
                after_persist
                    .compactions
                    .saturating_sub(before_persist.compactions),
            );
        }
        SolverResult {
            procs,
            inconsistencies,
            stats,
        }
    }
}

// An owned driver moves whole into a shard thread and its batch API is
// called behind `&self` from connection handlers, so the `'static` shape
// must be `Send + Sync`; guarantee it at compile time (the serve crate
// depends on this, like the core types' own assertions).
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<AnalysisDriver<'static>>();
    assert_send_sync::<ModuleJob>();
    assert_send_sync::<ModuleReport>();
    assert_send_sync::<SchemeCache>();
    assert_send_sync::<LatticeSelector>();
    assert_send_sync::<SolveRequest<'static>>();
    assert_send_sync::<AnalysisSession<'static, 'static>>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use retypd_core::solver::{CallTarget, Callsite, Procedure};

    fn proc(name: &str, cs: &str, callsites: Vec<Callsite>) -> Procedure {
        Procedure {
            name: Symbol::intern(name),
            constraints: retypd_core::parse::parse_constraint_set(cs).unwrap(),
            callsites,
        }
    }

    fn sample_program() -> Program {
        let mut prog = Program::new();
        prog.add_proc(proc(
            "main",
            "main.in_stack0 <= x; x <= leaf@c1.in_stack0",
            vec![Callsite {
                callee: CallTarget::Internal(1),
                tag: "c1".into(),
            }],
        ));
        prog.add_proc(proc(
            "leaf",
            "leaf.in_stack0 <= t; t.load.σ32@0 <= int; int <= leaf.out_eax",
            vec![],
        ));
        prog.add_proc(proc("iso", "iso.out_eax <= int32", vec![]));
        prog
    }

    fn render(r: &SolverResult) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, pr) in &r.procs {
            let _ = writeln!(out, "{name}: {}", pr.scheme);
            let _ = writeln!(out, "  sketch: {:?}", pr.sketch);
            let _ = writeln!(out, "  general: {:?}", pr.general_sketch);
        }
        let _ = writeln!(out, "{:?}", r.inconsistencies);
        out
    }

    #[test]
    fn driver_matches_sequential_solver() {
        let lattice = Lattice::c_types();
        let prog = sample_program();
        let seq = Solver::new(&lattice).infer(&prog);
        for workers in [1, 4] {
            let driver =
                AnalysisDriver::with_config(&lattice, DriverConfig::with_workers(workers));
            let got = driver.solve(&prog);
            assert_eq!(render(&got), render(&seq), "workers = {workers}");
        }
    }

    #[test]
    fn resubmission_is_all_hits() {
        let lattice = Lattice::c_types();
        let prog = sample_program();
        let driver = AnalysisDriver::with_config(&lattice, DriverConfig::with_workers(2));
        let first = driver.solve(&prog);
        assert_eq!(first.stats.cache_hits, 0);
        assert!(first.stats.cache_misses > 0);
        let second = driver.solve(&prog);
        assert_eq!(second.stats.cache_misses, 0, "re-submitted module must be a 100% hit");
        assert_eq!(
            second.stats.cache_hits,
            first.stats.cache_misses,
            "every SCC answered from cache"
        );
        assert_eq!(render(&first), render(&second));
    }
}
