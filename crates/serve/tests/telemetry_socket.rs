//! Live-socket telemetry acceptance tests (issue 8):
//!
//! * the v2 `metrics` request round-trips over a real socket with
//!   non-empty latency histograms, and for a shard-count-independent
//!   quantity (`shard.job_constraints`, which records each job's
//!   constraint count — the same multiset however jobs are routed) the
//!   merged buckets and p50/p95/p99 are **bit-identical** at 1 and N
//!   shards;
//! * a request-scoped `trace_id` is echoed on the report, the cold
//!   report carries a per-phase `timing` breakdown, and a warm re-solve
//!   omits it (cache hits perform no phase work);
//! * with spans enabled, the drained Chrome-trace JSONL reconstructs a
//!   per-phase breakdown of at least one solve: the shard's solve span
//!   contains the driver's solve span, which contains an SCC-phase span,
//!   all attributed to the request's trace id.
//!
//! `driver.*` instruments live in the process-global registry (shared by
//! every test in this binary), so cross-shard-count comparisons here use
//! only `shard.*` instruments, which live in per-server registries.

use std::time::Duration;

use retypd_driver::ModuleJob;
use retypd_minic::codegen::compile;
use retypd_minic::genprog::{ClusterSpec, ProgramGenerator};
use retypd_serve::wire::WireMetrics;
use retypd_serve::{start, Client, ServeConfig};
use retypd_telemetry::trace_id_hash;

fn corpus() -> Vec<ModuleJob> {
    let spec = ClusterSpec {
        name: "telem".into(),
        members: 3,
        shared_functions: 6,
        member_functions: 3,
        seed: 818,
        call_depth: 6,
    };
    ProgramGenerator::generate_cluster(&spec)
        .iter()
        .map(|(name, module)| {
            let (mir, _) = compile(module).expect("cluster member compiles");
            ModuleJob {
                name: name.clone(),
                program: retypd_congen::generate(&mir),
            }
        })
        .collect()
}

fn server(shards: usize) -> retypd_serve::ServerHandle {
    start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        shards,
        workers_per_shard: 1,
        queue_depth: 64,
        cache_capacity: Some(1024),
        read_timeout: Some(Duration::from_secs(10)),
        ..ServeConfig::default()
    })
    .expect("bind loopback server")
}

/// Solves the whole corpus once and returns the server's merged metrics.
fn solve_and_probe(shards: usize, jobs: &[ModuleJob]) -> WireMetrics {
    let handle = server(shards);
    let mut client = Client::connect(handle.addr()).expect("connect");
    for job in jobs {
        client.solve_module(job).expect("solve");
    }
    let metrics = client.metrics().expect("metrics probe");
    handle.shutdown();
    metrics
}

#[test]
fn metrics_probe_round_trips_with_bit_identical_quantiles_across_shard_counts() {
    let jobs = corpus();
    let one = solve_and_probe(1, &jobs);
    let three = solve_and_probe(3, &jobs);

    for (shards, m) in [(1, &one), (3, &three)] {
        // Latency histograms must exist and carry this run's samples.
        for name in ["shard.solve_ns", "shard.queue_wait_ns"] {
            let h = m
                .histogram(name)
                .unwrap_or_else(|| panic!("{name} missing at {shards} shard(s)"));
            assert_eq!(h.count, jobs.len() as u64, "{name} at {shards} shard(s)");
            assert!(!h.buckets.is_empty(), "{name} empty at {shards} shard(s)");
            assert!(h.p50 > 0 && h.p95 >= h.p50 && h.p99 >= h.p95, "{name} quantiles");
        }
        assert_eq!(m.counter("shard.jobs"), jobs.len() as u64);
        // The merged reply is name-sorted regardless of how many shard
        // registries fed it.
        let names: Vec<&str> = m.histograms.iter().map(|h| h.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted, "histograms not name-sorted at {shards} shard(s)");
    }

    // The deterministic histogram: each job records its constraint count,
    // a shard-count-independent multiset, so the merged buckets — and
    // therefore p50/p95/p99 — must be bit-identical at 1 and 3 shards.
    let a = one.histogram("shard.job_constraints").expect("at 1 shard");
    let b = three.histogram("shard.job_constraints").expect("at 3 shards");
    assert_eq!(a, b, "merged job_constraints histogram differs across shard counts");
    assert_eq!(a.count, jobs.len() as u64);
    assert!(a.p50 > 0 && a.p99 >= a.p50);
}

#[test]
fn trace_id_echoes_and_cold_reports_carry_phase_timing() {
    let jobs = corpus();
    let handle = server(1);
    let mut client = Client::connect(handle.addr()).expect("connect");

    let cold = client
        .solve_module_traced(&jobs[0], None, Some("pr8-cold-trace"))
        .expect("traced solve");
    assert_eq!(cold.trace_id.as_deref(), Some("pr8-cold-trace"));
    let timing = cold.timing.expect("cold solve performed phase work");
    assert!(
        timing.saturate_ns > 0 || timing.simplify_ns > 0 || timing.sketch_ns > 0,
        "cold timing breakdown is all-zero: {timing:?}"
    );

    // A verbatim warm re-solve is a cache hit: no phase work was performed
    // for it, so the report must omit the breakdown rather than repeat the
    // remembered cold numbers.
    let warm = client
        .solve_module_traced(&jobs[0], None, Some("pr8-warm-trace"))
        .expect("warm traced solve");
    assert_eq!(warm.trace_id.as_deref(), Some("pr8-warm-trace"));
    assert!(warm.timing.is_none(), "warm cache hit reported timing {:?}", warm.timing);

    // Untraced requests stay untraced.
    let plain = client.solve_module(&jobs[1]).expect("untraced solve");
    assert!(plain.trace_id.is_none());
    handle.shutdown();
}

#[test]
fn drained_spans_reconstruct_a_per_phase_solve_breakdown() {
    let jobs = corpus();
    retypd_telemetry::set_spans_enabled(true);
    let handle = server(1);
    let mut client = Client::connect(handle.addr()).expect("connect");
    let report = client
        .solve_module_traced(&jobs[0], None, Some("pr8-span-trace"))
        .expect("traced solve");
    assert_eq!(report.trace_id.as_deref(), Some("pr8-span-trace"));
    // Joining the server flushes every worker's ring before the drain.
    handle.shutdown();
    retypd_telemetry::set_spans_enabled(false);

    let (events, _dropped) = retypd_telemetry::drain_spans();
    let trace = trace_id_hash("pr8-span-trace");
    let ours: Vec<_> = events.iter().filter(|e| e.trace_id == trace).collect();

    let find = |name: &str| {
        ours.iter()
            .find(|e| e.name == name)
            .unwrap_or_else(|| panic!("no {name} span for the traced request"))
    };
    let shard = find("serve.shard_solve");
    let solve = find("driver.solve");
    let scc = ours
        .iter()
        .find(|e| e.name == "driver.scc_solve" || e.name == "driver.scc_refine")
        .expect("no SCC-phase span for the traced request");

    // The spans nest: shard solve ⊇ driver solve ⊇ SCC phase — that
    // containment is what lets a trace viewer reconstruct the per-phase
    // breakdown of the solve.
    let contains = |outer: &retypd_telemetry::SpanEvent, inner: &retypd_telemetry::SpanEvent| {
        outer.start_ns <= inner.start_ns
            && inner.start_ns + inner.dur_ns <= outer.start_ns + outer.dur_ns
    };
    assert!(contains(shard, solve), "driver.solve not inside serve.shard_solve");
    assert!(contains(solve, scc), "SCC phase span not inside driver.solve");

    // The Chrome-trace JSONL (what `serve --trace-dir` writes) carries the
    // same breakdown: one complete event per line, attributed to the trace.
    let jsonl = retypd_telemetry::chrome_trace_json(&events);
    let hex = format!("{trace:016x}");
    let mut attributed = 0;
    for line in jsonl.lines() {
        assert!(line.starts_with('{') && line.ends_with('}'), "not JSONL: {line}");
        if line.contains(&hex) {
            attributed += 1;
        }
    }
    assert!(
        attributed >= 3,
        "expected the shard, driver, and SCC spans in the JSONL; found {attributed}"
    );
    for name in ["serve.shard_solve", "driver.solve"] {
        assert!(
            jsonl.contains(&format!("\"name\":\"{name}\"")),
            "JSONL lacks a {name} event"
        );
    }
}
