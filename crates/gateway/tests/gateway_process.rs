//! Failure-path tests against *real backend processes*: the gateway
//! spawns `serve_backend` children (the sibling binary sharing `serve`'s
//! main), and this suite kill -9s one mid-batch. The batch must complete
//! over re-routing with no lost or duplicated reports; the supervisor
//! must restart the child onto its original persist dir; and the
//! restarted process must answer its first re-routed request from the
//! replayed persistent store. Also pins the stdout readiness banner and
//! the `pid`/`start_ns` liveness fields end to end.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use retypd_core::{Lattice, Solver};
use retypd_driver::ModuleJob;
use retypd_gateway::{server, Backend, BackendSpec, GatewayConfig};
use retypd_minic::codegen::compile;
use retypd_minic::genprog::{ClusterSpec, ProgramGenerator};
use retypd_serve::wire::WireReport;
use retypd_serve::Client;

fn corpus() -> Vec<ModuleJob> {
    let spec = ClusterSpec {
        name: "gwproc".into(),
        members: 4,
        shared_functions: 4,
        member_functions: 2,
        seed: 433,
        call_depth: 4,
    };
    ProgramGenerator::generate_cluster(&spec)
        .iter()
        .map(|(name, module)| {
            let (mir, _) = compile(module).expect("cluster member compiles");
            ModuleJob {
                name: name.clone(),
                program: retypd_congen::generate(&mir),
            }
        })
        .collect()
}

fn backend_bin() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_serve_backend"))
}

/// A scratch dir under the target-adjacent temp root, unique per test.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "retypd-gw-{tag}-{}-{:x}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::SystemTime::UNIX_EPOCH)
            .map_or(0, |d| d.as_nanos())
    ));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

#[test]
fn kill9_mid_batch_reroutes_restarts_and_warm_replays() {
    let jobs = corpus();
    let lattice = Lattice::c_types();
    let want: Vec<String> = jobs
        .iter()
        .map(|j| {
            WireReport::from_result(&j.name, &Solver::new(&lattice).infer(&j.program))
                .canonical_text()
        })
        .collect();

    let store = scratch("kill9");
    let spec = |slot: usize| BackendSpec::Spawn {
        program: backend_bin(),
        args: vec!["--shards".into(), "1".into()],
        persist_dir: Some(store.join(format!("slot-{slot}"))),
    };
    let gw = server::start(
        GatewayConfig {
            health_interval: Duration::from_millis(100),
            ..GatewayConfig::default()
        },
        vec![spec(0), spec(1)],
    )
    .expect("gateway over two spawned backends");
    let mut client = Client::connect(gw.addr()).expect("connect");

    // Cold pass: populates both backends' caches *and* persistent stores.
    let cold = client.solve_batch(&jobs).expect("cold batch");
    for (i, r) in cold.iter().enumerate() {
        assert_eq!(r.canonical_text(), want[i], "{} cold", jobs[i].name);
    }
    // Store appends flush at solve boundaries; give the writer threads a
    // beat so the kill -9 below cannot outrun the final batch's append.
    retypd_core::sync::thread::sleep(Duration::from_millis(500));

    let victim = 1usize;
    let old_pid = gw.backend_pid(victim);
    assert_ne!(old_pid, 0, "spawned backend announced its pid");

    // kill -9 the victim mid-batch: start a streaming batch (the
    // constructor returns once the first report frame arrives, so work
    // is in flight), then slam the child.
    let mut stream = client
        .solve_batch_stream(&jobs, None)
        .expect("stream admitted");
    gw.kill_backend(victim);

    // The batch completes over re-routing: every index exactly once,
    // no losses, no duplicates, bytes identical to the sequential solver.
    let mut seen = vec![false; jobs.len()];
    while let Some(item) = stream.next() {
        let (i, report) = item.expect("no per-module failures despite the kill");
        assert!(
            !std::mem::replace(&mut seen[i], true),
            "index {i} reported twice — duplicate reply crossed the gateway"
        );
        assert_eq!(
            report.canonical_text(),
            want[i],
            "{} diverged after the kill",
            jobs[i].name
        );
    }
    assert!(seen.iter().all(|&s| s), "a report was lost in the re-route");
    let summary = stream.summary().expect("terminal batch_done").clone();
    assert_eq!(summary.delivered, jobs.len());
    assert!(summary.errors.is_empty(), "{:?}", summary.errors);

    // The supervisor restarts the victim (same slot, same persist dir)
    // and re-adds it once it probes healthy.
    let deadline = Instant::now() + Duration::from_secs(30);
    while gw.healthy_slots().len() < 2 {
        assert!(
            Instant::now() < deadline,
            "killed backend was never restarted and re-added"
        );
        retypd_core::sync::thread::sleep(Duration::from_millis(50));
    }
    let new_pid = gw.backend_pid(victim);
    assert_ne!(new_pid, old_pid, "re-added backend must be a new process");

    // With the original ring restored, the whole corpus re-solves warm:
    // the survivor from its live cache, the restarted victim from its
    // *replayed* store — its first re-routed requests, answered warm.
    let warm = client.solve_batch(&jobs).expect("warm batch after restart");
    for (i, r) in warm.iter().enumerate() {
        assert_eq!(r.canonical_text(), want[i], "{} warm", jobs[i].name);
        assert_eq!(
            r.stats.cache_misses, 0,
            "{}: the restarted backend must answer from its replayed store",
            jobs[i].name
        );
    }

    // The gateway's own counters recorded the episode.
    let snap = gw.metrics_snapshot();
    let get = |name: &str| {
        snap.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    };
    assert!(get("gateway.evicted") >= 1, "eviction counted");
    assert!(get("gateway.restarts") >= 1, "restart counted");
    assert!(get("gateway.readded") >= 1, "re-add counted");

    gw.shutdown();
    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn readiness_banner_and_liveness_fields_work_end_to_end() {
    // Via the supervision path: launch announces the banner's pid.
    let b = Backend::new(
        0,
        BackendSpec::Spawn {
            program: backend_bin(),
            args: vec!["--shards".into(), "1".into()],
            persist_dir: None,
        },
    );
    let addr = b.launch(Duration::from_secs(30)).expect("banner parsed");
    let mut client = Client::connect_retry(addr, Duration::from_secs(10)).expect("connect");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.pid, b.pid(), "stats pid matches the banner pid");
    assert!(stats.start_ns > 0, "start_ns exposed for restart detection");
    b.kill();

    // Via a banner *file* on an ephemeral port — the path CI's scripts
    // use instead of assuming a fixed free port.
    let dir = scratch("banner");
    let banner_path = dir.join("serve.banner");
    let mut child = std::process::Command::new(backend_bin())
        .args([
            "--addr",
            "127.0.0.1:0",
            "--shards",
            "1",
            "--banner-file",
            banner_path.to_str().expect("utf8 path"),
        ])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn serve_backend");
    let deadline = Instant::now() + Duration::from_secs(30);
    let banner = loop {
        if let Ok(text) = std::fs::read_to_string(&banner_path) {
            if let Some(parsed) = retypd_serve::parse_ready_banner(text.trim_end()) {
                break parsed;
            }
        }
        assert!(Instant::now() < deadline, "banner file never appeared");
        retypd_core::sync::thread::sleep(Duration::from_millis(50));
    };
    let (addr, pid, shards) = banner;
    assert_eq!(shards, 1);
    assert_eq!(pid, child.id());
    let mut client = Client::connect_retry(addr, Duration::from_secs(10)).expect("connect");
    let stats = client.stats().expect("stats over the banner-file addr");
    assert_eq!(stats.pid, pid as u64);
    client.shutdown().expect("graceful drain");
    let _ = child.wait();
    let _ = std::fs::remove_dir_all(&dir);
}
