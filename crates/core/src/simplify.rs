//! Constraint-set simplification and type-scheme inference (§5,
//! Algorithm D.3).
//!
//! Given a constraint set `C` and a set of *interesting* base variables
//! (procedure variables, globals — type constants are always interesting),
//! simplification produces a small constraint set `C′` mentioning only
//! interesting variables and fresh existential variables, such that `C′`
//! entails every interesting consequence of `C` (Definition 5.1):
//! capability constraints `VAR τ.u`, recursive constraints `τ.u ⊑ τ.v`, and
//! constant bounds `τ.u ⊑ κ` / `κ ⊑ τ.u`.
//!
//! The algorithm saturates the constraint graph (Appendix D), restricts it
//! to states on accepted pops-then-pushes paths between interesting
//! endpoints (Appendix D.4 "shadowing"), and re-reads each surviving edge as
//! a constraint over per-state variables (Algorithm D.3). Soundness of the
//! per-edge readings follows by substituting each synthesized variable with
//! the derived type variable it names; completeness follows from the
//! invariant that a pop-phase state `(d,⊕)` reached from entry `X` with pop
//! word `u` witnesses `X.u ⊑ d` (and dually for `⊖`).

use std::collections::BTreeSet;

use crate::constraint::ConstraintSet;
use crate::dtv::{BaseVar, DerivedVar};
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::graph::{ConstraintGraph, DtvId, EdgeKind, NodeId};
use crate::intern::Symbol;
use crate::lattice::Lattice;
use crate::saturation::saturate;
use crate::scheme::TypeScheme;
use crate::shapes::ShapeQuotient;
use crate::variance::Variance;

/// Per-extraction fresh-variable source. Numbering restarts at `τ0` for
/// every extraction (in the deterministic edge-iteration order), so a
/// scheme's rendered form is a *canonical* function of its input constraint
/// set — independent of process history and of how many schemes other
/// threads are extracting concurrently. That canonicity is what lets the
/// parallel driver produce bit-identical schemes for any worker count and
/// lets its cache key schemes by content fingerprint. Collisions between
/// schemes are harmless: existentials only ever meet other constraint sets
/// through `TypeScheme::instantiate`, which `@tag`-renames them per
/// callsite.
struct FreshVars(u64);

impl FreshVars {
    fn new() -> FreshVars {
        FreshVars(0)
    }

    fn next(&mut self) -> BaseVar {
        let n = self.0;
        self.0 += 1;
        BaseVar::var(&format!("τ{n}"))
    }
}

/// Phase of the pops-then-pushes discipline (Appendix D.4).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum Phase {
    Pop,
    Push,
}

/// Dense set over `(node, phase)` pairs — a [`crate::bitset::BitSet`] with
/// the phase folded into the low index bit.
struct PhaseSet {
    bits: crate::bitset::BitSet,
}

impl PhaseSet {
    fn new(node_count: usize) -> PhaseSet {
        PhaseSet {
            bits: crate::bitset::BitSet::new(node_count * 2),
        }
    }

    fn idx(n: NodeId, p: Phase) -> usize {
        (n.0 as usize) * 2 + (p == Phase::Push) as usize
    }

    /// Inserts; returns true if newly added.
    fn insert(&mut self, n: NodeId, p: Phase) -> bool {
        self.bits.insert(Self::idx(n, p))
    }

    fn contains(&self, n: NodeId, p: Phase) -> bool {
        self.bits.contains(Self::idx(n, p))
    }
}

/// Options controlling scheme extraction.
#[derive(Clone, Copy, Debug)]
pub struct SimplifyOptions {
    /// Also emit the capability skeleton: constraints witnessing `VAR X.u`
    /// facts that never reach a type constant. Without this, a formal whose
    /// field is accessed but unconstrained would lose the field in callers'
    /// sketches.
    pub keep_capabilities: bool,
}

impl Default for SimplifyOptions {
    fn default() -> SimplifyOptions {
        SimplifyOptions {
            keep_capabilities: true,
        }
    }
}

/// Infers simplified type schemes from constraint sets.
///
/// ```
/// use retypd_core::{ConstraintSet, Lattice, SchemeBuilder};
///
/// let mut cs = ConstraintSet::new();
/// cs.add_sub_str("id.in_stack0", "v");
/// cs.add_sub_str("v", "id.out_eax");
/// let lattice = Lattice::c_types();
/// let scheme = SchemeBuilder::new(&lattice).infer("id", &cs);
/// // The identity function's scheme relates input to output.
/// let printed = scheme.constraints().to_string();
/// assert!(printed.contains("in_stack0"));
/// assert!(printed.contains("out_eax"));
/// ```
#[derive(Clone, Debug)]
pub struct SchemeBuilder<'l> {
    #[allow(dead_code)]
    lattice: &'l Lattice,
    options: SimplifyOptions,
}

impl<'l> SchemeBuilder<'l> {
    /// Creates a builder with default options.
    pub fn new(lattice: &'l Lattice) -> SchemeBuilder<'l> {
        SchemeBuilder {
            lattice,
            options: SimplifyOptions::default(),
        }
    }

    /// Overrides the extraction options.
    pub fn with_options(mut self, options: SimplifyOptions) -> SchemeBuilder<'l> {
        self.options = options;
        self
    }

    /// Infers the type scheme of procedure `func` from its constraint set,
    /// keeping only `func` itself, type constants, and fresh existentials.
    pub fn infer(&self, func: &str, cs: &ConstraintSet) -> TypeScheme {
        let subject = BaseVar::var(func);
        let mut interesting = BTreeSet::new();
        interesting.insert(subject);
        self.infer_with_interesting(subject, &interesting, cs)
    }

    /// Infers a scheme keeping all of `interesting` (procedure variables of
    /// an SCC, globals) as endpoints.
    pub fn infer_with_interesting(
        &self,
        subject: BaseVar,
        interesting: &BTreeSet<BaseVar>,
        cs: &ConstraintSet,
    ) -> TypeScheme {
        let (constraints, existentials) = self.simplify(cs, interesting);
        TypeScheme::new(subject, existentials, constraints)
    }

    /// Simplifies `cs` down to constraints over `interesting` variables,
    /// type constants, and fresh existentials (returned alongside).
    pub fn simplify(
        &self,
        cs: &ConstraintSet,
        interesting: &BTreeSet<BaseVar>,
    ) -> (ConstraintSet, BTreeSet<Symbol>) {
        let mut g = ConstraintGraph::build(cs);
        saturate(&mut g);
        let quotient = ShapeQuotient::build(cs);
        self.extract(&g, &quotient, interesting)
    }

    /// Runs extraction on an already saturated graph.
    ///
    /// `quotient` supplies the capability language: graph nodes whose
    /// derived variable denotes no derivable capability (phantom siblings
    /// materialized for the unconditional `∆ptr` rules) are excluded, so
    /// schemes never leak phantom capabilities into callers.
    pub fn extract(
        &self,
        g: &ConstraintGraph,
        quotient: &ShapeQuotient,
        interesting: &BTreeSet<BaseVar>,
    ) -> (ConstraintSet, BTreeSet<Symbol>) {
        let is_endpoint =
            |b: BaseVar| -> bool { b.is_const() || interesting.contains(&b) };

        // Reality filter: a node participates iff its word is a derivable
        // capability of its base.
        let real: Vec<bool> = g
            .nodes()
            .map(|n| quotient.has_var(g.dtv(n)))
            .collect();
        let is_real = |n: NodeId| real[n.0 as usize];

        // Entry/exit nodes: bare interesting variables and constants.
        let mut endpoints: Vec<NodeId> = Vec::new();
        for n in g.nodes() {
            let d = g.dtv(n);
            if d.is_empty() && is_endpoint(d.base()) && is_real(n) {
                endpoints.push(n);
            }
        }
        if endpoints.is_empty() {
            return (ConstraintSet::new(), BTreeSet::new());
        }

        // Forward phase-aware reachability.
        let fwd = forward_states(g, &endpoints, &is_real);
        // Backward phase-aware reachability.
        let bwd = backward_states(g, &endpoints, &is_real);

        // Collect live edges. Iteration is node-major over the CSR
        // partitions, so the order (and with it the fresh-variable
        // numbering) is deterministic without a sorted set.
        let mut live_edges: Vec<(NodeId, NodeId, EdgeKind)> = Vec::new();
        for n in g.nodes() {
            if !is_real(n) {
                continue;
            }
            for e in g.edges_out(n) {
                if !is_real(e.to) {
                    continue;
                }
                let live = phase_transitions(e.kind)
                    .iter()
                    .any(|&(ps, pt)| fwd.contains(n, ps) && bwd.contains(e.to, pt));
                if live {
                    live_edges.push((n, e.to, e.kind));
                }
            }
        }

        // The extraction below covers the relational core; the capability
        // skeleton (VAR facts that never reach a constant) is emitted
        // separately from the shape quotient — see after the edge loop.
        let _ = &self.options;

        // Emit constraints. Synthesized names are keyed by the graph's
        // interned dtv ids — no derived-variable cloning or path hashing.
        let mut fresh = FreshVars::new();
        let mut names: FxHashMap<DtvId, BaseVar> = FxHashMap::default();
        let mut existentials: BTreeSet<Symbol> = BTreeSet::new();
        let var_of = |n: NodeId,
                          fresh: &mut FreshVars,
                          names: &mut FxHashMap<DtvId, BaseVar>,
                          existentials: &mut BTreeSet<Symbol>|
         -> DerivedVar {
            let d = g.dtv(n);
            if is_endpoint(d.base()) {
                return d.clone();
            }
            let base = *names.entry(n.dtv_id()).or_insert_with(|| fresh.next());
            existentials.insert(base.name());
            DerivedVar::new(base)
        };

        let mut out = ConstraintSet::new();
        let add = |l: DerivedVar, r: DerivedVar, out: &mut ConstraintSet| {
            if l == r {
                return;
            }
            if l.is_const() && r.is_const() && l.is_empty() && r.is_empty() {
                return;
            }
            out.add_sub(l, r);
        };

        for &(s, t, kind) in &live_edges {
            // Capabilities of interesting variables must survive even when
            // the chain-edge constraint below would be a skipped reflexive
            // (var(x).ℓ ⊑ var(x.ℓ) with both literal): declare them.
            if let EdgeKind::Pop(_) = kind {
                let dt = g.dtv(t);
                if is_endpoint(dt.base()) && !dt.base().is_const() {
                    out.add_var_decl(dt.clone());
                }
            }
            match kind {
                EdgeKind::Eps => {
                    let vs = var_of(s, &mut fresh, &mut names, &mut existentials);
                    let vt = var_of(t, &mut fresh, &mut names, &mut existentials);
                    match s.variance() {
                        Variance::Covariant => add(vs, vt, &mut out),
                        Variance::Contravariant => add(vt, vs, &mut out),
                    }
                }
                EdgeKind::Pop(l) => {
                    // s = (x, v), t = (x.ℓ, v·⟨ℓ⟩).
                    let vx = var_of(s, &mut fresh, &mut names, &mut existentials).push(l);
                    let vxl = var_of(t, &mut fresh, &mut names, &mut existentials);
                    match t.variance() {
                        Variance::Covariant => add(vx, vxl, &mut out),
                        Variance::Contravariant => add(vxl, vx, &mut out),
                    }
                }
                EdgeKind::Push(l) => {
                    // s = (x.ℓ, v), t = (x, v·⟨ℓ⟩).
                    let vxl = var_of(s, &mut fresh, &mut names, &mut existentials);
                    let vx = var_of(t, &mut fresh, &mut names, &mut existentials).push(l);
                    match s.variance() {
                        Variance::Covariant => add(vxl, vx, &mut out),
                        Variance::Contravariant => add(vx, vxl, &mut out),
                    }
                }
            }
        }

        // Capability skeleton: capabilities transfer across ⊑ in both
        // directions (T-INHERIT-L/R), so the right structure is the shape
        // quotient's sub-automaton rooted at each interesting variable
        // (Theorem 3.1). One fresh variable per reachable class; the chain
        // constraints reproduce the capability words, and `X ⊑ τ_root`
        // grafts them onto the interesting variable. The fresh variables
        // carry no lattice constants, so no bounds can leak through them.
        if self.options.keep_capabilities {
            let mut class_var: FxHashMap<crate::shapes::ClassId, BaseVar> = FxHashMap::default();
            let mut emitted: FxHashSet<crate::shapes::ClassId> = FxHashSet::default();
            for base in interesting {
                if base.is_const() {
                    continue;
                }
                let Some(root) = quotient.walk(*base, &[]) else {
                    continue;
                };
                let root_var = *class_var.entry(root).or_insert_with(|| fresh.next());
                existentials.insert(root_var.name());
                out.add_sub(DerivedVar::new(*base), DerivedVar::new(root_var));
                let mut stack = vec![root];
                while let Some(c) = stack.pop() {
                    if !emitted.insert(c) {
                        continue;
                    }
                    let cv = *class_var.entry(c).or_insert_with(|| fresh.next());
                    existentials.insert(cv.name());
                    for (l, t) in quotient.successors(c) {
                        let tv = *class_var.entry(t).or_insert_with(|| fresh.next());
                        existentials.insert(tv.name());
                        out.add_sub(
                            DerivedVar::new(cv).push(l),
                            DerivedVar::new(tv),
                        );
                        stack.push(t);
                    }
                }
            }
        }
        (out, existentials)
    }
}

fn phase_transitions(kind: EdgeKind) -> Vec<(Phase, Phase)> {
    match kind {
        EdgeKind::Eps => vec![(Phase::Pop, Phase::Pop), (Phase::Push, Phase::Push)],
        EdgeKind::Pop(_) => vec![(Phase::Pop, Phase::Pop)],
        EdgeKind::Push(_) => vec![(Phase::Pop, Phase::Push), (Phase::Push, Phase::Push)],
    }
}

fn forward_states(
    g: &ConstraintGraph,
    entries: &[NodeId],
    is_real: &dyn Fn(NodeId) -> bool,
) -> PhaseSet {
    let mut seen = PhaseSet::new(g.node_count());
    let mut stack: Vec<(NodeId, Phase)> = Vec::new();
    for &n in entries {
        if seen.insert(n, Phase::Pop) {
            stack.push((n, Phase::Pop));
        }
    }
    while let Some((n, p)) = stack.pop() {
        for e in g.edges_out(n) {
            if !is_real(e.to) {
                continue;
            }
            for (ps, pt) in phase_transitions(e.kind) {
                if ps == p && seen.insert(e.to, pt) {
                    stack.push((e.to, pt));
                }
            }
        }
    }
    seen
}

fn backward_states(
    g: &ConstraintGraph,
    exits: &[NodeId],
    is_real: &dyn Fn(NodeId) -> bool,
) -> PhaseSet {
    let rev = g.reverse_adjacency();
    let mut seen = PhaseSet::new(g.node_count());
    let mut stack: Vec<(NodeId, Phase)> = Vec::new();
    for &n in exits {
        for p in [Phase::Pop, Phase::Push] {
            if seen.insert(n, p) {
                stack.push((n, p));
            }
        }
    }
    while let Some((n, p)) = stack.pop() {
        for e in &rev[n.0 as usize] {
            // e.to is the forward-source.
            if !is_real(e.to) {
                continue;
            }
            for (ps, pt) in phase_transitions(e.kind) {
                if pt == p && seen.insert(e.to, ps) {
                    stack.push((e.to, ps));
                }
            }
        }
    }
    seen
}

/// Builds and saturates the constraint graph of `cs` (a convenience for
/// entailment queries and diagnostics).
pub fn saturated_graph(cs: &ConstraintSet) -> ConstraintGraph {
    let mut g = ConstraintGraph::build(cs);
    saturate(&mut g);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deduction::Oracle;
    use crate::parse::{parse_constraint_set, parse_derived_var};
    use crate::transducer::accepts;

    fn simplify(src: &str, func: &str) -> TypeScheme {
        let cs = parse_constraint_set(src).unwrap();
        let lat = Lattice::c_types();
        SchemeBuilder::new(&lat).infer(func, &cs)
    }

    #[test]
    fn keeps_constant_bounds() {
        // f's argument is loaded and passed to a function wanting int.
        let scheme = simplify(
            "f.in_stack0 <= v; v.load.σ32@0 <= w; w <= int",
            "f",
        );
        // The simplified constraints must still entail
        // f.in_stack0.load.σ32@0 ⊑ int.
        let g = saturated_graph(scheme.constraints());
        let lhs = parse_derived_var("f.in_stack0.load.σ32@0").unwrap();
        let rhs = parse_derived_var("int").unwrap();
        assert!(
            accepts(&g, &lhs, &rhs),
            "scheme lost the bound: {}",
            scheme
        );
    }

    #[test]
    fn eliminates_internal_variables() {
        let scheme = simplify("f.in_stack0 <= v; v <= w; w <= f.out_eax", "f");
        for c in scheme.constraints().subtypes() {
            for side in [&c.lhs, &c.rhs] {
                let b = side.base();
                let name = b.name().as_str();
                assert!(
                    b.is_const() || name == "f" || name.starts_with('τ'),
                    "unexpected variable {side} in {}",
                    scheme
                );
            }
        }
        // And the input/output relation survives.
        let g = saturated_graph(scheme.constraints());
        let lhs = parse_derived_var("f.in_stack0").unwrap();
        let rhs = parse_derived_var("f.out_eax").unwrap();
        assert!(accepts(&g, &lhs, &rhs), "lost in→out flow: {scheme}");
    }

    #[test]
    fn recursive_structure_survives() {
        // A linked-list walk: the value loaded at offset 0 flows back into
        // the loop variable (Figure 2's shape).
        let src = "
            f.in_stack0 <= v
            v.load.σ32@0 <= v
            v.load.σ32@4 <= #FileDescriptor
            int <= f.out_eax
        ";
        let scheme = simplify(src, "f");
        let g = saturated_graph(scheme.constraints());
        // One unrolling of the recursion must still be derivable.
        let deep =
            parse_derived_var("f.in_stack0.load.σ32@0.load.σ32@4").unwrap();
        let fd = parse_derived_var("#FileDescriptor").unwrap();
        assert!(accepts(&g, &deep, &fd), "recursion lost: {scheme}");
        let out = parse_derived_var("f.out_eax").unwrap();
        let int = parse_derived_var("int").unwrap();
        assert!(accepts(&g, &int, &out));
    }

    #[test]
    fn capability_skeleton_preserved() {
        // f reads a field of its argument but the value is unconstrained:
        // no constant endpoint, yet the capability must survive so callers
        // know the argument is a pointer to a ≥8-byte struct.
        let scheme = simplify("f.in_stack0 <= v; v.load.σ32@4 <= w", "f");
        let cs = scheme.constraints();
        let oracle = Oracle::close(cs, 3);
        let cap = parse_derived_var("f.in_stack0.load.σ32@4").unwrap();
        assert!(
            oracle.entails_var(&cap),
            "capability lost: {scheme}"
        );
    }

    #[test]
    fn soundness_no_invented_relations() {
        // x and y are unrelated in C; the scheme must not relate them.
        let src = "f.in_stack0 <= x; y <= f.out_eax; x <= int; int <= y";
        let scheme = simplify(src, "f");
        let g = saturated_graph(scheme.constraints());
        let input = parse_derived_var("f.in_stack0").unwrap();
        let output = parse_derived_var("f.out_eax").unwrap();
        // in ⊑ int ⊑ out IS derivable in C (through int), so this must hold:
        assert!(accepts(&g, &input, &output));
        // but out ⊑ in must not appear.
        assert!(!accepts(&g, &output, &input));
    }

    #[test]
    fn contravariant_input_position() {
        // A function that stores int through its pointer argument:
        // int ⊑ f.in_stack0.store.σ32@0.
        let src = "f.in_stack0 <= p; int <= p.store.σ32@0";
        let scheme = simplify(src, "f");
        let g = saturated_graph(scheme.constraints());
        let lhs = parse_derived_var("int").unwrap();
        let rhs = parse_derived_var("f.in_stack0.store.σ32@0").unwrap();
        assert!(accepts(&g, &lhs, &rhs), "store bound lost: {scheme}");
    }
}
