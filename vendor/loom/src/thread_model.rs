//! Model-checked double of `std::thread` spawning and joining.
//!
//! Model threads are real OS threads registered with the scheduler:
//! spawn and join are schedule points and happens-before edges
//! (spawn: parent → child; join: child's final clock → joiner).
//! `sleep` and `yield_now` are pure schedule points — model time is
//! abstract, so a sleep never delays anything; it only lets other
//! threads run first in some explored schedules.
//!
//! Not modeled (deliberately): `std::thread::scope` (borrow-scoped
//! spawns would need lifetime-erased trampolines; the workspace keeps
//! `std::thread::scope` call sites on raw std with a lint waiver) and
//! `park`/`unpark` (parking the active model thread for real would
//! wedge the baton).

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::time::Duration;

use crate::rt;

/// Model-checked double of `std::thread::JoinHandle`.
pub struct JoinHandle<T> {
    real: std::thread::JoinHandle<T>,
    model: Option<usize>,
}

impl<T> JoinHandle<T> {
    /// Joins the thread: blocks in model time until it finishes (its
    /// final vector clock transfers to the joiner), then reaps the
    /// real thread.
    pub fn join(self) -> std::thread::Result<T> {
        if let Some(tid) = self.model {
            rt::join_model(tid);
        }
        self.real.join()
    }

    /// Whether the thread has finished (a model observation point).
    pub fn is_finished(&self) -> bool {
        if let Some(tid) = self.model {
            if let Some(done) = rt::is_finished_model(tid) {
                return done;
            }
        }
        self.real.is_finished()
    }

    /// The underlying thread.
    pub fn thread(&self) -> &std::thread::Thread {
        self.real.thread()
    }
}

impl<T> std::fmt::Debug for JoinHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.pad("JoinHandle { .. }")
    }
}

/// Model-checked double of `std::thread::Builder`.
#[derive(Debug, Default)]
pub struct Builder {
    name: Option<String>,
    stack_size: Option<usize>,
}

impl Builder {
    /// A fresh builder.
    pub fn new() -> Builder {
        Builder::default()
    }

    /// Names the thread (used in model failure reports too).
    pub fn name(mut self, name: String) -> Builder {
        self.name = Some(name);
        self
    }

    /// Sets the real thread's stack size (no model meaning).
    pub fn stack_size(mut self, size: usize) -> Builder {
        self.stack_size = Some(size);
        self
    }

    /// Spawns the thread; under the model this registers a scheduler
    /// slot and is a schedule point for the parent.
    pub fn spawn<F, T>(self, f: F) -> std::io::Result<JoinHandle<T>>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let mut b = std::thread::Builder::new();
        if let Some(n) = &self.name {
            b = b.name(n.clone());
        }
        if let Some(s) = self.stack_size {
            b = b.stack_size(s);
        }
        match rt::register_child(self.name) {
            Some((exec, tid)) => {
                let real = b.spawn(move || {
                    rt::child_enter(exec, tid);
                    let r = catch_unwind(AssertUnwindSafe(f));
                    match &r {
                        Ok(_) => rt::finish_current(rt::Outcome::Ok),
                        Err(e) => rt::finish_current(rt::classify(&**e)),
                    }
                    match r {
                        Ok(v) => v,
                        // Re-raise so the real JoinHandle reports Err;
                        // resume_unwind skips the (suppressed) hook.
                        Err(e) => resume_unwind(e),
                    }
                });
                match real {
                    Ok(real) => {
                        rt::spawn_point();
                        Ok(JoinHandle {
                            real,
                            model: Some(tid),
                        })
                    }
                    Err(e) => {
                        rt::cancel_child(tid);
                        Err(e)
                    }
                }
            }
            None => Ok(JoinHandle {
                real: b.spawn(f)?,
                model: None,
            }),
        }
    }
}

/// Spawns a thread (see [`Builder::spawn`]).
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    Builder::new().spawn(f).expect("failed to spawn thread")
}

/// A pure schedule point under the model; a real yield outside it.
pub fn yield_now() {
    if rt::op(|_, _| ()).is_none() {
        std::thread::yield_now();
    }
}

/// Model time is abstract: under the model this is exactly
/// [`yield_now`]; outside it, a real sleep.
pub fn sleep(dur: Duration) {
    if rt::op(|_, _| ()).is_none() {
        std::thread::sleep(dur);
    }
}
