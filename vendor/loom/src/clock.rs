//! Vector clocks: the happens-before backbone of the checker.
//!
//! Every model thread carries a [`VClock`]; every synchronizing event
//! (release store, mutex unlock, spawn, join, …) snapshots or joins
//! clocks. `a ≤ b` ("a happens-before-or-equals b") is the pointwise
//! comparison; two clocks where neither dominates witness concurrency.

/// Hard cap on model threads per execution. Interleaving exploration is
/// exponential in thread count, so a model that wants more than this is
/// almost certainly a mis-written model; the scheduler fails the run
/// with a clear message rather than exploding.
pub const MAX_THREADS: usize = 8;

/// A fixed-width vector clock over the execution's thread slots.
#[derive(Clone, Copy, PartialEq, Eq, Default)]
pub struct VClock([u32; MAX_THREADS]);

impl VClock {
    /// The zero clock: happens-before everything, known to everyone.
    pub const fn zero() -> VClock {
        VClock([0; MAX_THREADS])
    }

    /// This thread's own component (its local event counter).
    pub fn get(&self, tid: usize) -> u32 {
        self.0[tid]
    }

    /// Advances `tid`'s component by one — called once per model event.
    pub fn tick(&mut self, tid: usize) {
        self.0[tid] += 1;
    }

    /// Pointwise maximum: after `self.join(o)`, everything known to
    /// either clock is known to `self`.
    pub fn join(&mut self, other: &VClock) {
        for (a, b) in self.0.iter_mut().zip(other.0.iter()) {
            *a = (*a).max(*b);
        }
    }

    /// Whether `self` happens-before-or-equals `other` (pointwise ≤).
    pub fn le(&self, other: &VClock) -> bool {
        self.0.iter().zip(other.0.iter()).all(|(a, b)| a <= b)
    }
}

impl std::fmt::Debug for VClock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "⟨")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "⟩")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_is_pointwise_max_and_le_is_pointwise() {
        let mut a = VClock::zero();
        let mut b = VClock::zero();
        a.tick(0);
        a.tick(0);
        b.tick(1);
        assert!(!a.le(&b));
        assert!(!b.le(&a));
        let mut j = a;
        j.join(&b);
        assert!(a.le(&j));
        assert!(b.le(&j));
        assert_eq!(j.get(0), 2);
        assert_eq!(j.get(1), 1);
    }
}
