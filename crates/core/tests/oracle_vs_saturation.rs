//! Cross-validation of the pushdown saturation solver against the naive
//! Figure 3 deduction oracle.
//!
//! * **Completeness**: every subtype fact the bounded oracle derives
//!   *between materialized derived variables* must be accepted by the
//!   saturated-graph transducer (Theorem D.1, ⇒ direction). The
//!   materialization scope — mentions, prefixes, and their load/store
//!   sibling closure — is the documented completeness envelope: like the
//!   paper's Algorithm D.2, the saturation does not instantiate the
//!   pushdown `∆ptr` rules at arbitrary unmentioned depths, so Fig. 3
//!   entailments reachable only by repeatedly S-FIELD-lifting S-POINTER
//!   conclusions beyond that envelope are out of scope.
//! * **Soundness**: every pair the transducer accepts between *derivable
//!   capabilities* (shape-quotient-real words) must be derivable by the
//!   oracle. On phantom words the pushdown system deliberately
//!   over-approximates (its `∆ptr` has no `VAR` gates).

use proptest::prelude::*;
use retypd_core::deduction::Oracle;
use retypd_core::graph::ConstraintGraph;
use retypd_core::saturation::saturate;
use retypd_core::shapes::ShapeQuotient;
use retypd_core::transducer::accepts;
use retypd_core::{BaseVar, ConstraintSet, DerivedVar, Label};

fn label_strategy() -> impl Strategy<Value = Label> {
    prop_oneof![
        Just(Label::Load),
        Just(Label::Store),
        Just(Label::sigma(32, 0)),
    ]
}

fn base_strategy() -> impl Strategy<Value = BaseVar> {
    prop_oneof![
        4 => prop_oneof![Just("a"), Just("b"), Just("c")].prop_map(BaseVar::var),
        1 => Just(BaseVar::constant("int")),
    ]
}

fn dtv_strategy(max_len: usize) -> impl Strategy<Value = DerivedVar> {
    (
        base_strategy(),
        proptest::collection::vec(label_strategy(), 0..=max_len),
    )
        .prop_map(|(b, path)| {
            if b.is_const() {
                // Constants carry no capabilities in generated sets.
                DerivedVar::new(b)
            } else {
                DerivedVar::with_path(b, path)
            }
        })
}

fn constraint_set_strategy(
    max_word: usize,
    max_constraints: usize,
) -> impl Strategy<Value = ConstraintSet> {
    proptest::collection::vec(
        (dtv_strategy(max_word), dtv_strategy(max_word)),
        1..=max_constraints,
    )
    .prop_map(|pairs| {
        let mut cs = ConstraintSet::new();
        for (l, r) in pairs {
            cs.add_sub(l, r);
        }
        cs
    })
}

/// Constraints shaped like real constraint-generation output: at most one
/// side carries a label word (value copies `x ⊑ y`, loads `p.load.σ ⊑ x`,
/// stores `x ⊑ p.store.σ`, formals `f.in ⊑ x`), and the two sides have
/// distinct base variables. The abstract interpreter of Appendix A never
/// emits deep words on both sides of one constraint nor relates a variable
/// to its own derived variable (each definition site gets a fresh
/// variable); restricting the generator to this shape keeps the
/// completeness check within the engine's documented envelope (see module
/// docs).
fn machine_shaped_strategy(
    max_word: usize,
    max_constraints: usize,
) -> impl Strategy<Value = ConstraintSet> {
    proptest::collection::vec(
        (dtv_strategy(max_word), dtv_strategy(max_word), any::<bool>()),
        1..=max_constraints,
    )
    .prop_map(|triples| {
        let mut cs = ConstraintSet::new();
        for (l, r, left_deep) in triples {
            if l.base() == r.base() {
                continue;
            }
            let (l, r) = if left_deep {
                (l, DerivedVar::new(r.base()))
            } else {
                (DerivedVar::new(l.base()), r)
            };
            cs.add_sub(l, r);
        }
        if cs.is_empty() {
            cs.add_sub(DerivedVar::var("a"), DerivedVar::var("b"));
        }
        cs
    })
}

/// All query dtvs: bases and constants extended by words up to length 2
/// over the test alphabet.
fn query_universe(cs: &ConstraintSet) -> Vec<DerivedVar> {
    let labels = [Label::Load, Label::Store, Label::sigma(32, 0)];
    let mut out = Vec::new();
    for base in cs.base_vars() {
        let root = DerivedVar::new(base);
        out.push(root.clone());
        if base.is_const() {
            continue;
        }
        for &l1 in &labels {
            let d1 = root.clone().push(l1);
            out.push(d1.clone());
            for &l2 in &labels {
                out.push(d1.clone().push(l2));
            }
        }
    }
    out
}

/// A tiny deterministic xorshift generator, so the larger randomized
/// workloads below reproduce exactly across runs and machines (no
/// proptest shrinking needed at this size — failures print the seed).
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Builds a load/store aliasing chain: values flow `v0 ⊑ v1 ⊑ … ⊑ vN` with
/// interleaved stores through one pointer alias and loads through another
/// (`pi.load.σ ⊑ vi`, `vi ⊑ p(i+1).store.σ`, `pi ⊑ p(i+1)`), the pattern
/// whose saturation requires the S-POINTER shortcut edges.
fn aliasing_chain(rng: &mut XorShift, links: usize) -> ConstraintSet {
    let mut cs = ConstraintSet::new();
    for i in 0..links {
        cs.add_sub(
            DerivedVar::var(&format!("v{i}")),
            DerivedVar::var(&format!("v{}", i + 1)),
        );
        match rng.below(3) {
            0 => {
                cs.add_sub(
                    DerivedVar::var(&format!("p{i}"))
                        .push(Label::Load)
                        .push(Label::sigma(32, 0)),
                    DerivedVar::var(&format!("v{i}")),
                );
                cs.add_sub(
                    DerivedVar::var(&format!("v{i}")),
                    DerivedVar::var(&format!("p{}", i + 1))
                        .push(Label::Store)
                        .push(Label::sigma(32, 0)),
                );
            }
            1 => {
                cs.add_sub(
                    DerivedVar::var(&format!("p{i}")),
                    DerivedVar::var(&format!("p{}", i + 1)),
                );
            }
            _ => {}
        }
    }
    cs.add_sub(DerivedVar::var("v0"), DerivedVar::constant("int"));
    cs
}

/// Builds a recursive-loop constraint set in the Figure 2 shape: one or
/// more list walkers `ti.load.σ32@0 ⊑ ti` with handle fields, linked by
/// random value flows.
fn recursive_loops(rng: &mut XorShift, loops: usize) -> ConstraintSet {
    let mut cs = ConstraintSet::new();
    for i in 0..loops {
        let t = DerivedVar::var(&format!("t{i}"));
        cs.add_sub(t.clone().push(Label::Load).push(Label::sigma(32, 0)), t.clone());
        cs.add_sub(
            t.clone().push(Label::Load).push(Label::sigma(32, 4)),
            DerivedVar::constant("int"),
        );
        if i > 0 && rng.below(2) == 0 {
            cs.add_sub(DerivedVar::var(&format!("t{}", rng.below(i as u64))), t);
        }
    }
    cs
}

/// The refactored saturation must agree with the bounded Figure 3 oracle on
/// every derivable fact between materialized variables — on constraint sets
/// an order of magnitude larger than the proptest cases below.
#[test]
fn saturation_complete_on_large_aliasing_chains() {
    for seed in [3, 7, 11, 2024] {
        let mut rng = XorShift(seed);
        let cs = aliasing_chain(&mut rng, 12);
        let oracle = Oracle::close(&cs, 2);
        let mut g = ConstraintGraph::build(&cs);
        saturate(&mut g);
        let mut checked = 0usize;
        for (l, r) in oracle.subtype_facts() {
            if l == r || !g.contains(l) || !g.contains(r) {
                continue;
            }
            checked += 1;
            assert!(
                accepts(&g, l, r),
                "seed {seed}: oracle derives {l} ⊑ {r} but transducer rejects\n{cs}"
            );
        }
        assert!(checked > 50, "seed {seed}: trivial workload ({checked} facts)");
    }
}

#[test]
fn saturation_complete_on_recursive_loops() {
    for seed in [5, 17, 4242] {
        let mut rng = XorShift(seed);
        let cs = recursive_loops(&mut rng, 6);
        let oracle = Oracle::close(&cs, 3);
        let mut g = ConstraintGraph::build(&cs);
        saturate(&mut g);
        for (l, r) in oracle.subtype_facts() {
            if l == r || !g.contains(l) || !g.contains(r) {
                continue;
            }
            assert!(
                accepts(&g, l, r),
                "seed {seed}: oracle derives {l} ⊑ {r} but transducer rejects\n{cs}"
            );
        }
        // The loop shape must also admit an unrolled deep query.
        let deep = DerivedVar::var("t0")
            .push(Label::Load)
            .push(Label::sigma(32, 0))
            .push(Label::Load)
            .push(Label::sigma(32, 4));
        assert!(accepts(&g, &deep, &DerivedVar::constant("int")));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn transducer_complete_wrt_oracle(cs in machine_shaped_strategy(2, 5)) {
        let oracle = Oracle::close(&cs, 2);
        let mut g = ConstraintGraph::build(&cs);
        saturate(&mut g);
        for (l, r) in oracle.subtype_facts() {
            if l == r || !g.contains(l) || !g.contains(r) {
                continue;
            }
            prop_assert!(
                accepts(&g, l, r),
                "oracle derives {l} ⊑ {r} but transducer rejects it\nconstraints:\n{cs}"
            );
        }
    }

    #[test]
    fn transducer_sound_wrt_oracle(cs in constraint_set_strategy(1, 4)) {
        let oracle = Oracle::close(&cs, 3);
        let mut g = ConstraintGraph::build(&cs);
        saturate(&mut g);
        let quotient = ShapeQuotient::build(&cs);
        let universe = query_universe(&cs);
        let mut deep_oracle: Option<Oracle> = None;
        for l in &universe {
            for r in &universe {
                if l == r || !accepts(&g, l, r) {
                    continue;
                }
                // The pushdown system over-approximates on words that are
                // not derivable capabilities (§ module docs); skip those.
                if !quotient.has_var(l) || !quotient.has_var(r) {
                    continue;
                }
                if oracle.entails_sub(l, r) {
                    continue;
                }
                // Retry with a deeper universe before failing: the minimal
                // derivation may pass through longer intermediate words.
                let deep = deep_oracle.get_or_insert_with(|| Oracle::close(&cs, 5));
                prop_assert!(
                    deep.entails_sub(l, r),
                    "transducer accepts {l} ⊑ {r} but the oracle cannot derive it\nconstraints:\n{cs}"
                );
            }
        }
    }

    #[test]
    fn quotient_capabilities_agree_with_oracle(cs in constraint_set_strategy(2, 5)) {
        // Shape-quotient capability language ⟺ Figure 3 `VAR` derivability.
        let oracle = Oracle::close(&cs, 2);
        let quotient = ShapeQuotient::build(&cs);
        let universe = query_universe(&cs);
        for d in &universe {
            if d.is_const() {
                continue;
            }
            // Strict direction: the quotient must never *lose* a derivable
            // capability (a lost capability means a lost struct field).
            // The converse inclusion holds by the Theorem 3.1 construction
            // but is indistinguishable from oracle bound truncation on
            // adversarial self-referential inputs, so it is not asserted.
            if oracle.entails_var(d) {
                prop_assert!(
                    quotient.has_var(d),
                    "quotient lost capability {}\nconstraints:\n{}",
                    d,
                    cs
                );
            }
        }
    }

    #[test]
    fn simplification_preserves_interesting_constraints(
        cs in constraint_set_strategy(2, 5)
    ) {
        // Simplify with `a` interesting; every oracle-derivable constraint
        // between a-rooted materialized dtvs and constants must survive
        // simplification.
        let lattice = retypd_core::Lattice::c_types();
        let builder = retypd_core::SchemeBuilder::new(&lattice);
        let mut interesting = std::collections::BTreeSet::new();
        interesting.insert(BaseVar::var("a"));
        let (simplified, _) = builder.simplify(&cs, &interesting);

        let oracle = Oracle::close(&cs, 2);
        let mut g = ConstraintGraph::build(&cs);
        saturate(&mut g);
        let quotient = ShapeQuotient::build(&cs);
        let mut g2 = ConstraintGraph::build(&simplified);
        saturate(&mut g2);
        for (l, r) in oracle.subtype_facts() {
            if l == r || !g.contains(l) || !g.contains(r) {
                continue;
            }
            if !quotient.has_var(l) || !quotient.has_var(r) {
                continue;
            }
            let l_ok = l.base() == BaseVar::var("a") || l.is_const();
            let r_ok = r.base() == BaseVar::var("a") || r.is_const();
            if !(l_ok && r_ok) {
                continue;
            }
            if l.is_const() && r.is_const() {
                continue;
            }
            prop_assert!(
                accepts(&g2, l, r),
                "simplification lost {l} ⊑ {r}\noriginal:\n{cs}\nsimplified:\n{simplified}"
            );
        }
    }
}
