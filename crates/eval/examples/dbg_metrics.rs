use retypd_baselines::{infer_tie, infer_unification};
use retypd_core::Lattice;
use retypd_eval::front::infer_retypd;
use retypd_eval::metrics::truth_to_infty;
use retypd_minic::codegen::compile;
use retypd_minic::genprog::{GenConfig, ProgramGenerator};
use retypd_minic::truth::ParamLoc;

fn main() {
    let module = ProgramGenerator::new(GenConfig { seed: 3, functions: 8, ..GenConfig::default() }).generate();
    let (mir, truth) = compile(&module).unwrap();
    let program = retypd_congen::generate(&mir);
    let lattice = Lattice::c_types();
    let r = infer_retypd(&program, &lattice);
    let t = infer_tie(&program, &lattice);
    let u = infer_unification(&program, &lattice);
    for ft in &truth.funcs {
        println!("== {} ==", ft.name);
        let sym = retypd_core::Symbol::intern(&ft.name);
        for p in &ft.params {
            let loc = match &p.loc { ParamLoc::Stack(k) => retypd_core::Loc::Stack(*k), ParamLoc::Reg(n) => retypd_core::Loc::reg(n) };
            println!("  param {:?}: truth={}", p.loc, truth_to_infty(&p.ty, &truth.module, 0));
            println!("    retypd: {:?}", r.get(&sym).and_then(|f| f.params.get(&loc)).map(|x| x.to_string()));
            println!("    tie:    {:?}", t.get(&sym).and_then(|f| f.params.get(&loc)).map(|x| x.to_string()));
            println!("    unif:   {:?}", u.get(&sym).and_then(|f| f.params.get(&loc)).map(|x| x.to_string()));
        }
        if let Some(rt) = &ft.ret {
            println!("  ret: truth={}", truth_to_infty(rt, &truth.module, 0));
            println!("    retypd: {:?}", r.get(&sym).and_then(|f| f.ret.clone()).map(|x| x.to_string()));
            println!("    tie:    {:?}", t.get(&sym).and_then(|f| f.ret.clone()).map(|x| x.to_string()));
            println!("    unif:   {:?}", u.get(&sym).and_then(|f| f.ret.clone()).map(|x| x.to_string()));
        }
    }
}
