//! Saturation of the constraint graph (Algorithm D.2).
//!
//! Saturation adds ε "shortcut" edges so that every balanced
//! push-ℓ … pop-ℓ excursion in a derivation is summarized by a single ε
//! edge. After saturation, every entailed constraint `X.u ⊑ Y.v` (with
//! `X.u`, `Y.v` materialized) is witnessed by a path that performs all its
//! pops first, then all its pushes — the "reduced" form of Appendix D.4.
//!
//! The algorithm maintains, per node `q`, a *reaching-push* set `R(q)` of
//! pairs `(ℓ, z)`: there is a transition sequence from `z` to `q` whose
//! stack-operation word reduces to `push ℓ`. The rules are:
//!
//! 1. seed: a push-ℓ edge `x → y` puts `(ℓ, x)` into `R(y)`;
//! 2. propagate: an ε edge `x → y` makes `R(y) ⊇ R(x)`;
//! 3. shortcut: a pop-ℓ edge `x → y` with `(ℓ, z) ∈ R(x)` adds the ε edge
//!    `z → y` (and its mirror, keeping the graph symmetric);
//! 4. **lazy S-POINTER** (the paper's ∆ptr has one rule per derived type
//!    variable, an infinite set, so it is applied lazily): at a
//!    contravariant node `(d,⊖)`, `(.store, z) ∈ R((d,⊖))` implies
//!    `(.load, z) ∈ R((d,⊕))`, and `(.load, z) ∈ R((d,⊖))` implies
//!    `(.store, z) ∈ R((d,⊕))`.
//!
//! Rule 4 moves entries **across the variance rows**: the pushdown rules
//! `rule⊕/rule⊖(v.store ⊑ v.load)` both transfer control from `v⊖` to `v⊕`
//! (swapping the pending label), which is what makes the Figure 14 example
//! derive its dashed `x.store⊕ → y.load⊕` edge. This cross-variance form is
//! validated against the naive Figure 3 oracle by the proptests in this
//! module.

use std::collections::{HashSet, VecDeque};

use crate::graph::{ConstraintGraph, EdgeKind, NodeId};
use crate::label::Label;
use crate::variance::Variance;

/// Saturates the graph in place. Returns the number of ε edges added.
pub fn saturate(g: &mut ConstraintGraph) -> usize {
    let mut reaching: Vec<HashSet<(Label, NodeId)>> = vec![HashSet::new(); g.node_count()];
    let mut dirty: VecDeque<NodeId> = VecDeque::new();
    let mut queued: Vec<bool> = vec![false; g.node_count()];
    let mut added = 0usize;

    let enqueue = |n: NodeId, dirty: &mut VecDeque<NodeId>, queued: &mut Vec<bool>| {
        if !queued[n.0 as usize] {
            queued[n.0 as usize] = true;
            dirty.push_back(n);
        }
    };

    // Seed: push edges.
    for n in g.nodes() {
        for e in g.edges_out(n) {
            if let EdgeKind::Push(l) = e.kind {
                if reaching[e.to.0 as usize].insert((l, n)) {
                    enqueue(e.to, &mut dirty, &mut queued);
                }
            }
        }
    }

    // Worklist: process nodes whose R set changed; re-run propagation,
    // shortcut and lazy rules from them. New ε edges may require
    // re-propagating from their sources.
    while let Some(n) = dirty.pop_front() {
        queued[n.0 as usize] = false;

        // Lazy S-POINTER at contravariant nodes: swap the pending label and
        // flip to the covariant twin.
        if n.variance() == Variance::Contravariant {
            let twin = n.mirror();
            let swapped: Vec<(Label, NodeId)> = reaching[n.0 as usize]
                .iter()
                .filter_map(|&(l, z)| match l {
                    Label::Store => Some((Label::Load, z)),
                    Label::Load => Some((Label::Store, z)),
                    _ => None,
                })
                .collect();
            let mut twin_changed = false;
            for entry in swapped {
                if reaching[twin.0 as usize].insert(entry) {
                    twin_changed = true;
                }
            }
            if twin_changed {
                enqueue(twin, &mut dirty, &mut queued);
            }
        }

        // Snapshot outgoing edges (we mutate the graph below).
        let edges: Vec<_> = g.edges_out(n).to_vec();
        for e in edges {
            match e.kind {
                EdgeKind::Eps => {
                    // Propagate R along ε.
                    let from: Vec<_> = reaching[n.0 as usize].iter().copied().collect();
                    let tgt = &mut reaching[e.to.0 as usize];
                    let mut changed = false;
                    for entry in from {
                        if tgt.insert(entry) {
                            changed = true;
                        }
                    }
                    if changed {
                        enqueue(e.to, &mut dirty, &mut queued);
                    }
                }
                EdgeKind::Pop(l) => {
                    // Shortcut rule.
                    let sources: Vec<NodeId> = reaching[n.0 as usize]
                        .iter()
                        .filter(|&&(ll, _)| ll == l)
                        .map(|&(_, z)| z)
                        .collect();
                    for z in sources {
                        if g.add_edge(z, e.to, EdgeKind::Eps) {
                            added += 1;
                            enqueue(z, &mut dirty, &mut queued);
                        }
                        // Mirror edge (Lemma D.7 symmetry).
                        if g.add_edge(e.to.mirror(), z.mirror(), EdgeKind::Eps) {
                            added += 1;
                            enqueue(e.to.mirror(), &mut dirty, &mut queued);
                        }
                    }
                }
                EdgeKind::Push(_) => {}
            }
        }
    }
    added
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::{parse_constraint_set, parse_derived_var};
    use crate::transducer::accepts;

    fn saturated(src: &str) -> ConstraintGraph {
        let cs = parse_constraint_set(src).unwrap();
        let mut g = ConstraintGraph::build(&cs);
        saturate(&mut g);
        g
    }

    fn check(src: &str, query: &str) -> bool {
        let g = saturated(src);
        let c = crate::parse::parse_constraint(query).unwrap();
        accepts(&g, &c.lhs, &c.rhs)
    }

    #[test]
    fn figure4_first_program() {
        // §3.3: C′1 = {q ⊑ p, x ⊑ p.store, q.load ⊑ y} ⊢ x ⊑ y.
        let src = "q <= p; x <= p.store; q.load <= y";
        assert!(check(src, "x <= y"));
        assert!(!check(src, "y <= x"));
    }

    #[test]
    fn figure4_second_program() {
        // §3.3: C′2 = {q ⊑ p, x ⊑ q.store, p.load ⊑ y} ⊢ x ⊑ y.
        let src = "q <= p; x <= q.store; p.load <= y";
        assert!(check(src, "x <= y"));
        assert!(!check(src, "y <= x"));
    }

    #[test]
    fn figure14_lazy_pointer_rule() {
        // {y ⊑ p, p ⊑ x, A ⊑ x.store, y.load ⊑ B} ⊢ A ⊑ B, via an implicit
        // S-POINTER application — the dashed edge of Figure 14.
        let src = "y <= p; p <= x; A <= x.store; y.load <= B";
        let g = saturated(src);
        let a = parse_derived_var("A").unwrap();
        let b = parse_derived_var("B").unwrap();
        assert!(accepts(&g, &a, &b));
        assert!(!accepts(&g, &b, &a));
        // The dashed edge itself: (x.store,⊕) --ε--> (y.load,⊕).
        let xs = g
            .node(
                &parse_derived_var("x.store").unwrap(),
                Variance::Covariant,
            )
            .unwrap();
        let yl = g
            .node(&parse_derived_var("y.load").unwrap(), Variance::Covariant)
            .unwrap();
        assert!(g
            .edges_out(xs)
            .iter()
            .any(|e| e.kind == EdgeKind::Eps && e.to == yl));
    }

    #[test]
    fn nested_sigma_through_pointer() {
        // Writing through one alias and reading through the other at a field
        // offset: y ⊑ p.store.σ32@0 and p.load.σ32@0 ⊑ x gives y ⊑ x.
        let src = "q <= p; y <= q.store.σ32@0; p.load.σ32@0 <= x";
        assert!(check(src, "y <= x"));
        assert!(!check(src, "x <= y"));
    }

    #[test]
    fn transitive_chain() {
        assert!(check("a <= b; b <= c; c <= d", "a <= d"));
        assert!(!check("a <= b; b <= c; c <= d", "d <= a"));
    }

    #[test]
    fn field_queries() {
        // a ⊑ b with b.load materialized ⟹ a.load ⊑ b.load.
        let src = "a <= b; b.load <= c";
        assert!(check(src, "a.load <= b.load"));
        assert!(check(src, "a.load <= c"));
        // Contravariant: b.store ⊑ a.store when a.store materialized, but
        // NOT a.store ⊑ b.store (store flips the direction).
        let src2 = "a <= b; d <= a.store";
        assert!(check(src2, "b.store <= a.store"));
        assert!(!check(src2, "d <= b.store"));
        // Dually, a value stored through the supertype's pointer reaches the
        // subtype's store capability.
        let src3 = "a <= b; d <= b.store";
        assert!(check(src3, "d <= a.store"));
    }

    #[test]
    fn recursive_loop_accepted() {
        // τ.load.σ32@0 ⊑ τ lets arbitrarily deep words collapse.
        let src = "t.load.σ32@0 <= t; t.load.σ32@4 <= int";
        assert!(check(src, "t.load.σ32@4 <= int"));
        // Unrolled once: t.load.σ32@0.load.σ32@4 ⊑ int.
        let g = saturated(src);
        let lhs = parse_derived_var("t.load.σ32@0.load.σ32@4").unwrap();
        let rhs = parse_derived_var("int").unwrap();
        assert!(accepts(&g, &lhs, &rhs));
    }

    #[test]
    fn graph_stays_mirror_symmetric() {
        let g = saturated("y <= p; p <= x; A <= x.store; y.load <= B");
        for n in g.nodes() {
            for e in g.edges_out(n) {
                if e.kind == EdgeKind::Eps {
                    let has_mirror = g
                        .edges_out(e.to.mirror())
                        .iter()
                        .any(|m| m.kind == EdgeKind::Eps && m.to == n.mirror());
                    assert!(
                        has_mirror,
                        "missing mirror of ({:?}, {:?})",
                        g.dtv(n),
                        g.dtv(e.to)
                    );
                }
            }
        }
    }
}
