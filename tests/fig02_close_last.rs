//! The paper's running example (Figure 2), end to end: mini-C source →
//! type-erasing compilation → analyses → constraint generation → solving →
//! C-type reconstruction.

use retypd::core::{CTypeBuilder, Label, Lattice, Solver, Symbol};
use retypd::minic::codegen::compile;
use retypd::minic::parse_module;

fn word(s: &str) -> Vec<Label> {
    retypd::core::parse::parse_derived_var(&format!("x.{s}"))
        .unwrap()
        .path()
        .to_vec()
}

#[test]
fn figure2_end_to_end() {
    let src = "
        struct LL { struct LL* next; int handle; };
        int close_last(const struct LL* list) {
            while (list->next != 0) { list = list->next; }
            return close(list->handle);
        }
    ";
    let module = parse_module(src).expect("parses");
    let (mir, truth) = compile(&module).expect("compiles");
    // The binary is genuinely type-erased: no type info survives in mir.
    assert!(mir.instruction_count() > 10);

    let program = retypd::congen::generate(&mir);
    let lattice = Lattice::c_types();
    let result = Solver::new(&lattice).infer(&program);
    let proc = &result.procs[&Symbol::intern("close_last")];

    // --- The sketch has the recursive list structure. ---
    let sk = proc.sketch.as_ref().expect("sketch inferred");
    assert!(sk.contains_word(&word("in_stack0.load.σ32@0")));
    assert!(sk.contains_word(&word("in_stack0.load.σ32@0.load.σ32@0.load.σ32@4")));
    // No store capability on the parameter: it is const.
    assert!(!sk.contains_word(&word("in_stack0.store")));

    // --- The handle field carries the semantic tag. ---
    let handle = sk.walk(&word("in_stack0.load.σ32@4")).expect("handle");
    let (_, upper) = sk.interval(handle);
    assert_eq!(lattice.name(upper), "#FileDescriptor");

    // --- The C downgrade matches Figure 2's output. ---
    let mut builder = CTypeBuilder::new(&lattice);
    let sig = builder.function_type(sk);
    let table = builder.into_table();
    let rendered = retypd::core::ctype::render_signature("close_last", &sig, &table);
    assert!(
        rendered.contains("const struct Struct_0 *"),
        "signature: {rendered}"
    );
    let structs = table.render();
    assert!(structs.contains("struct Struct_0 *"), "structs: {structs}");
    assert!(structs.contains("/*#FileDescriptor*/"), "structs: {structs}");

    // --- Ground truth agrees this was a const pointer param. ---
    assert_eq!(truth.const_param_count(), 1);

    // --- And the scheme mentions the recursive constraint through a
    //     synthesized variable (∃τ.C with τ.load.σ32@0 ⊑ τ-like loop). ---
    let scheme = proc.scheme.to_string();
    assert!(scheme.contains("close_last.in_stack0"), "{scheme}");
    assert!(scheme.contains("#FileDescriptor"), "{scheme}");
}

#[test]
fn figure2_no_false_inconsistencies() {
    let src = "
        struct LL { struct LL* next; int handle; };
        int close_last(const struct LL* list) {
            while (list->next != 0) { list = list->next; }
            return close(list->handle);
        }
    ";
    let module = parse_module(src).unwrap();
    let (mir, _) = compile(&module).unwrap();
    let program = retypd::congen::generate(&mir);
    let lattice = Lattice::c_types();
    let result = Solver::new(&lattice).infer(&program);
    assert!(
        result.inconsistencies.is_empty(),
        "spurious inconsistencies: {:?}",
        result.inconsistencies
    );
}
