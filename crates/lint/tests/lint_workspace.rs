//! The lint gate as a test: the whole workspace must scan clean, so a
//! raw `std::thread::spawn`, an unjustified `SeqCst`, or an uncommented
//! `unsafe` fails `cargo test` locally — not just the CI step.

use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    // crates/lint/ → workspace root is two levels up.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root");
    let files = retypd_lint::workspace_files(root);
    assert!(
        files.len() > 20,
        "expected the whole workspace, scanned only {} files from {}",
        files.len(),
        root.display()
    );
    let violations = retypd_lint::lint_workspace(root);
    assert!(
        violations.is_empty(),
        "retypd-lint found {} violation(s):\n{}",
        violations.len(),
        violations
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn the_scanner_still_bites() {
    // Guard against the gate rotting into a no-op: a synthetic violation
    // of every rule must be caught.
    let bad = concat!(
        "use std::sync::atomic::AtomicU64;\n",
        "use std::thread;\n",
        "unsafe { core::hint::unreachable_unchecked() }\n",
        "x.store(1, Ordering::SeqCst);\n",
        "#[cfg(test)]\n",
        "let addr = \"127.0.0.1:4455\";\n",
    );
    let found = retypd_lint::scan_source(Path::new("synthetic.rs"), bad, false);
    let rules: Vec<&str> = found.iter().map(|v| v.rule).collect();
    for rule in retypd_lint::RULES {
        assert!(
            rules.contains(&rule),
            "rule {rule} failed to fire on the synthetic source; found {rules:?}"
        );
    }
}
