//! Minimal API-compatible stand-in for the `criterion` crate.
//!
//! The build environment for this repository is offline, so the real
//! `criterion` cannot be fetched. This shim keeps the `benches/` targets
//! (`harness = false`) compiling and running: each benchmark is timed
//! with `std::time::Instant` over an adaptive number of iterations and
//! the mean wall-clock time per iteration is printed as one line:
//!
//! ```text
//! bench_name ... 12_345 ns/iter (n = 1000)
//! ```
//!
//! There is no statistical analysis, no outlier rejection, and no HTML
//! report — swap in the real criterion for publication-grade numbers.
//! The measured loop itself is faithful: the closure result is passed
//! through [`black_box`] so the optimizer cannot delete the work.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock spent measuring one benchmark (after warm-up).
const TARGET_MEASURE: Duration = Duration::from_millis(300);
/// Iteration cap, so huge per-iter benches still finish promptly.
const MAX_ITERS: u64 = 100_000;

/// Times a single benchmark body (the argument to [`Bencher::iter`]).
pub struct Bencher {
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Runs `body` repeatedly and records the mean time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        // Warm-up and per-iteration cost estimate.
        let warm_start = Instant::now();
        black_box(body());
        let once = warm_start.elapsed().max(Duration::from_nanos(1));

        let iters = (TARGET_MEASURE.as_nanos() / once.as_nanos()).clamp(1, MAX_ITERS as u128) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(body());
        }
        let total = start.elapsed();
        self.mean_ns = total.as_nanos() as f64 / iters as f64;
        self.iters = iters;
    }
}

fn run_one(name: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { mean_ns: 0.0, iters: 0 };
    f(&mut b);
    println!("{name:<40} ... {:>14.0} ns/iter (n = {})", b.mean_ns, b.iters);
}

/// Identifier for one parameterized benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Builds an id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes runs adaptively.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim sizes runs adaptively.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` against `input` under `id`.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id.id), &mut |b| f(b, input));
        self
    }

    /// Benchmarks `f` under `id` with no input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id.into().id), &mut f);
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs `f` as a named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, &mut f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), _criterion: self }
    }
}

/// Declares a benchmark group function (criterion-compatible signature).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes `--bench`; the shim has no CLI.
            $($group();)+
        }
    };
}
