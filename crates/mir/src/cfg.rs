//! Control-flow graph construction.
//!
//! Basic blocks are maximal single-entry straight-line instruction ranges;
//! leaders are the entry, branch targets, and fall-through successors of
//! terminators.

use std::collections::BTreeSet;

use crate::program::Function;

/// Index of a basic block.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct BlockId(pub usize);

/// A basic block: the half-open instruction range `[start, end)`.
#[derive(Clone, Debug)]
pub struct Block {
    /// First instruction index.
    pub start: usize,
    /// One past the last instruction index.
    pub end: usize,
    /// Successor blocks.
    pub succs: Vec<BlockId>,
    /// Predecessor blocks.
    pub preds: Vec<BlockId>,
}

/// A function's control-flow graph.
#[derive(Clone, Debug)]
pub struct Cfg {
    blocks: Vec<Block>,
    block_of_inst: Vec<usize>,
}

impl Cfg {
    /// Builds the CFG of a function.
    pub fn build(f: &Function) -> Cfg {
        let n = f.insts.len();
        let mut leaders: BTreeSet<usize> = BTreeSet::new();
        if n > 0 {
            leaders.insert(0);
        }
        for (i, inst) in f.insts.iter().enumerate() {
            if let Some(t) = inst.branch_target() {
                leaders.insert(t);
            }
            if inst.is_terminator() && i + 1 < n {
                leaders.insert(i + 1);
            }
        }
        let starts: Vec<usize> = leaders.into_iter().collect();
        let mut blocks: Vec<Block> = Vec::with_capacity(starts.len());
        for (bi, &s) in starts.iter().enumerate() {
            let e = starts.get(bi + 1).copied().unwrap_or(n);
            blocks.push(Block {
                start: s,
                end: e,
                succs: Vec::new(),
                preds: Vec::new(),
            });
        }
        let block_index =
            |starts: &[usize], inst: usize| -> usize { starts.partition_point(|&s| s <= inst) - 1 };
        let mut block_of_inst = vec![0usize; n];
        for (bi, b) in blocks.iter().enumerate() {
            for i in b.start..b.end {
                block_of_inst[i] = bi;
            }
        }
        // Successors.
        let mut edges: Vec<(usize, usize)> = Vec::new();
        for (bi, b) in blocks.iter().enumerate() {
            if b.end == b.start {
                continue;
            }
            let last = &f.insts[b.end - 1];
            if let Some(t) = last.branch_target() {
                edges.push((bi, block_index(&starts, t)));
            }
            if last.falls_through() && b.end < n {
                edges.push((bi, block_index(&starts, b.end)));
            }
        }
        for (from, to) in edges {
            blocks[from].succs.push(BlockId(to));
            blocks[to].preds.push(BlockId(from));
        }
        Cfg {
            blocks,
            block_of_inst,
        }
    }

    /// All blocks.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// The block containing an instruction.
    pub fn block_of(&self, inst: usize) -> BlockId {
        BlockId(self.block_of_inst[inst])
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True if the function was empty.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Blocks in reverse post-order from the entry (good iteration order for
    /// forward dataflow).
    pub fn reverse_postorder(&self) -> Vec<BlockId> {
        if self.blocks.is_empty() {
            return Vec::new();
        }
        let mut visited = vec![false; self.blocks.len()];
        let mut post: Vec<usize> = Vec::new();
        // Iterative DFS.
        let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
        visited[0] = true;
        while let Some((b, child)) = stack.pop() {
            if child < self.blocks[b].succs.len() {
                stack.push((b, child + 1));
                let s = self.blocks[b].succs[child].0;
                if !visited[s] {
                    visited[s] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
            }
        }
        post.reverse();
        post.into_iter().map(BlockId).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Cond, Inst, Operand, Reg};

    fn diamond() -> Function {
        // 0: cmp eax, 0
        // 1: jz 4
        // 2: mov eax, 1
        // 3: jmp 5
        // 4: mov eax, 2
        // 5: ret
        Function::new(
            "diamond",
            vec![
                Inst::Cmp {
                    a: Reg::Eax,
                    b: Operand::Imm(0),
                },
                Inst::Jcc {
                    cond: Cond::Eq,
                    target: 4,
                },
                Inst::Mov {
                    dst: Reg::Eax,
                    src: Operand::Imm(1),
                },
                Inst::Jmp(5),
                Inst::Mov {
                    dst: Reg::Eax,
                    src: Operand::Imm(2),
                },
                Inst::Ret,
            ],
        )
    }

    #[test]
    fn diamond_blocks() {
        let cfg = Cfg::build(&diamond());
        assert_eq!(cfg.len(), 4);
        // Entry block covers 0..2 and has two successors.
        let entry = &cfg.blocks()[0];
        assert_eq!((entry.start, entry.end), (0, 2));
        assert_eq!(entry.succs.len(), 2);
        // The ret block has two predecessors.
        let ret = cfg.block_of(5);
        assert_eq!(cfg.blocks()[ret.0].preds.len(), 2);
    }

    #[test]
    fn rpo_starts_at_entry() {
        let cfg = Cfg::build(&diamond());
        let rpo = cfg.reverse_postorder();
        assert_eq!(rpo[0], BlockId(0));
        assert_eq!(rpo.len(), 4);
    }

    #[test]
    fn loop_back_edge() {
        // 0: mov eax, 0
        // 1: add eax, 1
        // 2: cmp eax, 10
        // 3: jnz 1
        // 4: ret
        let f = Function::new(
            "loop",
            vec![
                Inst::Mov {
                    dst: Reg::Eax,
                    src: Operand::Imm(0),
                },
                Inst::Bin {
                    op: crate::isa::BinOp::Add,
                    dst: Reg::Eax,
                    src: Operand::Imm(1),
                },
                Inst::Cmp {
                    a: Reg::Eax,
                    b: Operand::Imm(10),
                },
                Inst::Jcc {
                    cond: Cond::Ne,
                    target: 1,
                },
                Inst::Ret,
            ],
        );
        let cfg = Cfg::build(&f);
        // Blocks: [0..1), [1..4), [4..5).
        assert_eq!(cfg.len(), 3);
        let body = cfg.block_of(1);
        assert!(cfg.blocks()[body.0].succs.contains(&body));
    }
}
