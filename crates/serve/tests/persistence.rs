//! End-to-end warm-restart tests: a server relaunched on the same
//! `persist_dir` must serve bit-identical reports to its previous
//! incarnation *from cache* — 100% hits on the resubmitted corpus, with
//! the shard stats reporting the replay — at 1 shard and at 3 shards
//! (routing is by content fingerprint, so the same shard count maps each
//! module back onto the shard that persisted it).

use std::path::PathBuf;

use retypd_core::sync::atomic::{AtomicU64, Ordering};

use retypd_driver::ModuleJob;
use retypd_minic::codegen::compile;
use retypd_minic::genprog::{ClusterSpec, ProgramGenerator};
use retypd_serve::{start, Client, ServeConfig};

/// A scratch directory under the system temp dir, removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new() -> TempDir {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "retypd-serve-persist-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn corpus() -> Vec<ModuleJob> {
    let spec = ClusterSpec {
        name: "persist".into(),
        members: 3,
        shared_functions: 5,
        member_functions: 2,
        seed: 9091,
        call_depth: 4,
    };
    ProgramGenerator::generate_cluster(&spec)
        .iter()
        .map(|(name, module)| {
            let (mir, _) = compile(module).expect("cluster member compiles");
            ModuleJob {
                name: name.clone(),
                program: retypd_congen::generate(&mir),
            }
        })
        .collect()
}

fn config(shards: usize, dir: &TempDir) -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".into(),
        shards,
        workers_per_shard: 1,
        queue_depth: 64,
        cache_capacity: Some(1024),
        persist_dir: Some(dir.0.clone()),
        ..ServeConfig::default()
    }
}

fn restart_round_trip(shards: usize) {
    let dir = TempDir::new();
    let jobs = corpus();

    // --- First incarnation: cold, populates the per-shard stores. ---
    let first: Vec<String> = {
        let handle = start(config(shards, &dir)).expect("bind first server");
        let mut client = Client::connect(handle.addr()).expect("connect");
        let reports = client.solve_batch(&jobs).expect("first solve");
        // The persisted-entries gauge trails the solve: appends are
        // processed by each store's writer thread, and a shard republishes
        // the gauge only on its *next* job. Re-submitting an already-solved
        // module (a pure cache hit) forces a republish with fresh writer
        // progress; poll until the gauge lands — the appends themselves
        // are guaranteed, only their visibility in `stats` is async.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        let stats = loop {
            let stats = client.stats().expect("stats");
            let persisted: u64 = stats.shards.iter().map(|s| s.persisted_entries).sum();
            if persisted > 0 || std::time::Instant::now() >= deadline {
                break stats;
            }
            let _ = client.solve_module(&jobs[0]).expect("republish poke");
            retypd_core::sync::thread::sleep(std::time::Duration::from_millis(10));
        };
        let replayed: u64 = stats.shards.iter().map(|s| s.replayed_entries).sum();
        let persisted: u64 = stats.shards.iter().map(|s| s.persisted_entries).sum();
        let misses: u64 = stats.shards.iter().map(|s| s.cache.misses).sum();
        assert_eq!(replayed, 0, "a fresh dir has nothing to replay");
        assert!(persisted > 0, "cold solves must persist scheme records");
        assert!(misses > 0, "first contact is cold");
        client.shutdown().expect("drain");
        handle.join();
        reports.iter().map(|r| r.canonical_text()).collect()
    };
    for shard_id in 0..shards {
        assert!(
            dir.0.join(format!("shard-{shard_id}.store")).exists(),
            "shard {shard_id} left no store file"
        );
    }

    // --- Second incarnation: same dir, same shard count — warm. ---
    let handle = start(config(shards, &dir)).expect("bind restarted server");
    let mut client = Client::connect(handle.addr()).expect("connect");
    // The replay gauges are visible before the first job arrives.
    let stats = client.stats().expect("stats before first job");
    let replayed: u64 = stats.shards.iter().map(|s| s.replayed_entries).sum();
    assert!(replayed > 0, "restart must replay the persisted stores");
    assert!(stats.shards.iter().all(|s| s.rebuilds == 0));

    let reports = client.solve_batch(&jobs).expect("restarted solve");
    let second: Vec<String> = reports.iter().map(|r| r.canonical_text()).collect();
    assert_eq!(second, first, "restart must be bit-identical");

    let stats = client.stats().expect("stats after warm solve");
    let hits: u64 = stats.shards.iter().map(|s| s.cache.hits).sum();
    let misses: u64 = stats.shards.iter().map(|s| s.cache.misses).sum();
    assert_eq!(misses, 0, "a replayed store leaves nothing to re-solve");
    assert!(hits > 0, "warm restart must hit the replayed cache");
    client.shutdown().expect("drain");
    handle.join();
}

#[test]
fn restart_is_bit_identical_and_fully_cached_at_1_shard() {
    restart_round_trip(1);
}

#[test]
fn restart_is_bit_identical_and_fully_cached_at_3_shards() {
    restart_round_trip(3);
}
