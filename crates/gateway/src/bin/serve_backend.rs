//! The backend server binary the gateway spawns by default: byte-for-
//! byte the same server main as `serve` (shared via
//! [`retypd_serve::launch::serve_main`]), rebuilt here so the gateway
//! crate's tests and binary can rely on a sibling executable
//! (`CARGO_BIN_EXE_serve_backend`) without reaching into another
//! package's target directory.

fn main() {
    std::process::exit(retypd_serve::launch::serve_main(std::env::args().skip(1)));
}
