//! A naive, bounded entailment oracle implementing the deduction rules of
//! Figure 3 directly.
//!
//! This exists to cross-validate the pushdown-system saturation solver
//! ([`crate::saturation`]): on small constraint sets, every constraint the
//! oracle derives (within the explored universe) must be accepted by the
//! transducer, and vice versa. It is exponential in the word-length bound
//! and must only be used on small inputs (tests, examples).
//!
//! The implemented rules are exactly Figure 3:
//!
//! * `T-LEFT` / `T-RIGHT`: `α ⊑ β ⟹ VAR α, VAR β`
//! * `T-PREFIX`: `VAR α.ℓ ⟹ VAR α`
//! * `T-INHERIT-L/R`: `α ⊑ β ⟹` capabilities transfer both ways
//! * `S-REFL`, `S-TRANS`
//! * `S-FIELD⊕` / `S-FIELD⊖`
//! * `S-POINTER`: `VAR α.load ∧ VAR α.store ⟹ α.store ⊑ α.load`

use std::collections::BTreeSet;

use crate::constraint::ConstraintSet;
use crate::dtv::DerivedVar;
use crate::label::Label;
use crate::variance::Variance;

/// Bounded deductive closure of a constraint set under the Figure 3 rules.
///
/// The universe of derived type variables explored is: every prefix of every
/// variable mentioned in the constraint set, extended by label words of
/// length at most `max_len` over the labels mentioned in the set (plus
/// `.load`/`.store`). Beware: the universe grows as `|Σ|^max_len`.
#[derive(Clone, Debug)]
pub struct Oracle {
    subs: BTreeSet<(DerivedVar, DerivedVar)>,
    vars: BTreeSet<DerivedVar>,
}

impl Oracle {
    /// Computes the closure. `max_len` bounds the length of label words in
    /// the explored universe.
    pub fn close(cs: &ConstraintSet, max_len: usize) -> Oracle {
        // Universe construction.
        let mut alphabet: BTreeSet<Label> = BTreeSet::new();
        for dv in cs.mentioned_vars() {
            for l in dv.path() {
                alphabet.insert(*l);
            }
        }
        alphabet.insert(Label::Load);
        alphabet.insert(Label::Store);

        let mut universe: BTreeSet<DerivedVar> = BTreeSet::new();
        let bases: BTreeSet<_> = cs.mentioned_vars().iter().map(|d| d.base()).collect();
        for base in &bases {
            let mut frontier = vec![DerivedVar::new(*base)];
            universe.insert(DerivedVar::new(*base));
            for _ in 0..max_len {
                let mut next = Vec::new();
                for d in &frontier {
                    for &l in &alphabet {
                        let e = d.clone().push(l);
                        if universe.insert(e.clone()) {
                            next.push(e);
                        }
                    }
                }
                frontier = next;
            }
        }
        // Seed facts. Mentioned variables and their prefixes exist
        // (closure assumptions of Appendix B), plus declared VARs.
        let mut subs: BTreeSet<(DerivedVar, DerivedVar)> = BTreeSet::new();
        let mut vars: BTreeSet<DerivedVar> = BTreeSet::new();
        for c in cs.subtypes() {
            subs.insert((c.lhs.clone(), c.rhs.clone()));
        }
        for d in cs.mentioned_vars() {
            for p in d.prefixes() {
                vars.insert(p);
            }
        }
        for d in cs.var_decls() {
            for p in d.prefixes() {
                vars.insert(p);
            }
        }

        // Fixpoint.
        let in_universe = |d: &DerivedVar| d.len() <= max_len && universe.contains(d);
        loop {
            let mut changed = false;
            // T-LEFT / T-RIGHT (+ T-PREFIX closure).
            let snapshot: Vec<_> = subs.iter().cloned().collect();
            for (l, r) in &snapshot {
                for side in [l, r] {
                    for p in side.prefixes() {
                        if in_universe(&p) && vars.insert(p) {
                            changed = true;
                        }
                    }
                }
            }
            // T-INHERIT both directions: if α ⊑ β and VAR α.ℓ then VAR β.ℓ
            // (and symmetrically).
            let var_snapshot: Vec<_> = vars.iter().cloned().collect();
            for (l, r) in &snapshot {
                for v in &var_snapshot {
                    if v.len() > l.len() && v.prefixes().any(|p| p == *l) {
                        // v = l.w — transfer the suffix to r.
                        let suffix = &v.path()[l.len()..];
                        let w = r.clone().extend(suffix.iter().copied());
                        if in_universe(&w) && vars.insert(w) {
                            changed = true;
                        }
                    }
                    if v.len() > r.len() && v.prefixes().any(|p| p == *r) {
                        let suffix = &v.path()[r.len()..];
                        let w = l.clone().extend(suffix.iter().copied());
                        if in_universe(&w) && vars.insert(w) {
                            changed = true;
                        }
                    }
                }
            }
            // S-FIELD⊕ / S-FIELD⊖.
            for (l, r) in &snapshot {
                for &lab in &alphabet {
                    let ll = l.clone().push(lab);
                    let rl = r.clone().push(lab);
                    if !in_universe(&ll) || !in_universe(&rl) {
                        continue;
                    }
                    // Fig. 3 requires VAR β.ℓ for both rules; existence of
                    // the other side follows by T-INHERIT.
                    if !vars.contains(&rl) && !vars.contains(&ll) {
                        continue;
                    }
                    let c = match lab.variance() {
                        Variance::Covariant => (ll, rl),
                        Variance::Contravariant => (rl, ll),
                    };
                    if subs.insert(c) {
                        changed = true;
                    }
                }
            }
            // S-POINTER.
            for v in &var_snapshot {
                if v.last_label() == Some(Label::Load) {
                    let base = v.parent().expect("load has a parent");
                    let store = base.clone().push(Label::Store);
                    if vars.contains(&store) && in_universe(v) {
                        if subs.insert((store, v.clone())) {
                            changed = true;
                        }
                    }
                }
            }
            // S-TRANS (semi-naive would be faster; inputs are tiny).
            let rhs_index: Vec<_> = subs.iter().cloned().collect();
            for (a, b) in &rhs_index {
                for (b2, c) in &rhs_index {
                    if b == b2 {
                        let cand = (a.clone(), c.clone());
                        if !subs.contains(&cand) {
                            subs.insert(cand);
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        Oracle { subs, vars }
    }

    /// True if `lhs ⊑ rhs` is in the bounded closure (S-REFL included).
    pub fn entails_sub(&self, lhs: &DerivedVar, rhs: &DerivedVar) -> bool {
        if lhs == rhs && self.vars.contains(lhs) {
            return true;
        }
        self.subs.contains(&(lhs.clone(), rhs.clone()))
    }

    /// True if `VAR v` is in the bounded closure.
    pub fn entails_var(&self, v: &DerivedVar) -> bool {
        self.vars.contains(v)
    }

    /// All subtype facts in the closure, for inspection.
    pub fn subtype_facts(&self) -> impl Iterator<Item = &(DerivedVar, DerivedVar)> {
        self.subs.iter()
    }

    /// All capability facts in the closure, for inspection.
    pub fn var_facts(&self) -> impl Iterator<Item = &DerivedVar> {
        self.vars.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::{parse_constraint_set, parse_derived_var};

    fn entails(cs: &str, query: &str, max_len: usize) -> bool {
        let cs = parse_constraint_set(cs).unwrap();
        let oracle = Oracle::close(&cs, max_len);
        let q = crate::parse::parse_constraint(query).unwrap();
        oracle.entails_sub(&q.lhs, &q.rhs)
    }

    #[test]
    fn transitivity() {
        assert!(entails("a <= b; b <= c", "a <= c", 1));
        assert!(!entails("a <= b; b <= c", "c <= a", 1));
    }

    #[test]
    fn field_covariant() {
        assert!(entails("a <= b; VAR b.load", "a.load <= b.load", 2));
    }

    #[test]
    fn field_contravariant() {
        assert!(entails("a <= b; VAR b.store", "b.store <= a.store", 2));
    }

    #[test]
    fn figure4_first_program() {
        // C′1 = {Q ⊑ P, X ⊑ P.store, Q.load ⊑ Y} ⊢ X ⊑ Y (§3.3).
        let cs = "q <= p; x <= p.store; q.load <= y";
        assert!(entails(cs, "x <= y", 2));
        assert!(!entails(cs, "y <= x", 2));
    }

    #[test]
    fn figure4_second_program() {
        // C′2 = {Q ⊑ P, X ⊑ Q.store, P.load ⊑ Y} ⊢ X ⊑ Y (§3.3).
        let cs = "q <= p; x <= q.store; p.load <= y";
        assert!(entails(cs, "x <= y", 2));
        assert!(!entails(cs, "y <= x", 2));
    }

    #[test]
    fn figure14_saturation_example() {
        // {y ⊑ p, p ⊑ x, A ⊑ x.store, y.load ⊑ B} ⊢ A ⊑ B.
        let cs = "y <= p; p <= x; A <= x.store; y.load <= B";
        assert!(entails(cs, "A <= B", 2));
        assert!(!entails(cs, "B <= A", 2));
    }

    #[test]
    fn capabilities_inherit() {
        let cs = parse_constraint_set("a <= b; VAR b.load.σ32@0").unwrap();
        let oracle = Oracle::close(&cs, 2);
        assert!(oracle.entails_var(&parse_derived_var("a.load").unwrap()));
        assert!(oracle.entails_var(&parse_derived_var("a.load.σ32@0").unwrap()));
    }

    #[test]
    fn no_spurious_pointer_rule() {
        // S-POINTER must not fire when only .load exists.
        let cs = parse_constraint_set("a.load <= b").unwrap();
        let oracle = Oracle::close(&cs, 2);
        let store = parse_derived_var("a.store").unwrap();
        let load = parse_derived_var("a.load").unwrap();
        assert!(!oracle.entails_sub(&store, &load));
    }
}
