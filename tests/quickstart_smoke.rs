//! Smoke test for the documented entry points.
//!
//! Mirrors `examples/quickstart.rs` and the `retypd-core` crate-root
//! quick-start step for step, so the commands shown in `README.md` and
//! the rustdoc can never silently rot: constraint parsing → solver →
//! type scheme → sketch → reconstructed C type.
//!
//! This is an in-process mirror (assertable), not an execution of the
//! example file itself; CI additionally runs
//! `cargo run --release --example quickstart` to catch drift in the
//! example. If you change the example, change this test to match.

use retypd::core::parse::parse_constraint_set;
use retypd::core::{
    CTypeBuilder, ConstraintSet, Lattice, Procedure, Program, SchemeBuilder, Solver, Symbol,
};

/// The Figure 2 constraint set used by `examples/quickstart.rs`.
fn quickstart_constraints() -> retypd::core::ConstraintSet {
    parse_constraint_set(
        "
        close_last.in_stack0 <= t
        t.load.σ32@0 <= t
        t.load.σ32@4 <= #FileDescriptor
        t.load.σ32@4 <= int
        int <= close_last.out_eax
        #SuccessZ <= close_last.out_eax
        ",
    )
    .expect("quickstart constraints parse")
}

#[test]
fn quickstart_example_path_end_to_end() {
    // Solve the one-procedure program, exactly as the example does.
    let lattice = Lattice::c_types();
    let mut program = Program::new();
    program.procs.push(Procedure {
        name: Symbol::intern("close_last"),
        constraints: quickstart_constraints(),
        callsites: vec![],
    });
    let result = Solver::new(&lattice).infer(&program);
    let proc = &result.procs[&Symbol::intern("close_last")];

    // A non-trivial simplified scheme comes out.
    assert!(
        !proc.scheme.constraints().is_empty(),
        "quickstart scheme should carry constraints, got:\n  {}",
        proc.scheme
    );

    // A sketch is inferred and renders (the recursive list shows a cycle).
    let sketch = proc.sketch.as_ref().expect("quickstart sketch inferred");
    let rendered = sketch.render(&lattice);
    assert!(!rendered.trim().is_empty(), "sketch renders non-empty");

    // The C downgrade produces a non-empty signature for the procedure.
    let mut builder = CTypeBuilder::new(&lattice);
    let sig = builder.function_type(sketch);
    let table = builder.into_table();
    let signature = retypd::core::ctype::render_signature("close_last", &sig, &table);
    assert!(
        signature.contains("close_last"),
        "rendered C signature names the procedure: {signature}"
    );
    assert!(
        !signature.trim().is_empty() && signature.len() > "close_last".len(),
        "rendered C signature is a real type: {signature}"
    );
}

#[test]
fn core_crate_root_quickstart_matches_docs() {
    // The `retypd-core` lib.rs quick-start, verbatim through the facade.
    let mut cs = ConstraintSet::new();
    cs.add_sub_str("f.in_stack0", "t");
    cs.add_sub_str("t.load.σ32@0", "int");
    cs.add_sub_str("t.load.σ32@0", "f.out_eax");

    let lattice = Lattice::c_types();
    let scheme = SchemeBuilder::new(&lattice).infer("f", &cs);
    assert!(!scheme.constraints().is_empty());
}
