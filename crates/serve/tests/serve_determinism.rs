//! Live-socket determinism and admission-control tests: a real server on a
//! loopback socket must produce byte-identical results to in-process
//! `AnalysisDriver::solve_batch` (and the sequential solver) at 1 and N
//! shards, refuse overload immediately instead of hanging, and drain
//! gracefully on shutdown.

use retypd_core::{Lattice, Solver};
use retypd_driver::{AnalysisDriver, DriverConfig, ModuleJob};
use retypd_minic::codegen::compile;
use retypd_minic::genprog::{ClusterSpec, ProgramGenerator};
use retypd_serve::wire::WireReport;
use retypd_serve::{start, Client, ClientError, ServeConfig};

fn corpus() -> Vec<ModuleJob> {
    let spec = ClusterSpec {
        name: "det".into(),
        members: 3,
        shared_functions: 6,
        member_functions: 3,
        seed: 515,
        call_depth: 6,
    };
    let mut jobs: Vec<ModuleJob> = ProgramGenerator::generate_cluster(&spec)
        .iter()
        .map(|(name, module)| {
            let (mir, _) = compile(module).expect("cluster member compiles");
            ModuleJob {
                name: name.clone(),
                program: retypd_congen::generate(&mir),
            }
        })
        .collect();
    // A verbatim re-submission exercises the warm shard path.
    let resubmit = ModuleJob {
        name: format!("{}+resubmit", jobs[0].name),
        program: jobs[0].program.clone(),
    };
    jobs.push(resubmit);
    jobs
}

fn server(shards: usize, queue_depth: usize) -> retypd_serve::ServerHandle {
    start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        shards,
        workers_per_shard: 1,
        queue_depth,
        cache_capacity: Some(1024),
    })
    .expect("bind loopback server")
}

#[test]
fn socket_results_match_in_process_and_sequential_at_1_and_n_shards() {
    let jobs = corpus();
    let lattice = Lattice::c_types();

    // In-process references: the driver batch API and the plain solver.
    let driver = AnalysisDriver::with_config(&lattice, DriverConfig::with_workers(2));
    let in_process: Vec<String> = driver
        .solve_batch(&jobs)
        .iter()
        .map(|r| WireReport::from_result(&r.name, &r.result).canonical_text())
        .collect();
    for (job, want) in jobs.iter().zip(&in_process) {
        let seq = Solver::new(&lattice).infer(&job.program);
        assert_eq!(
            WireReport::from_result(&job.name, &seq).canonical_text(),
            *want,
            "driver batch diverged from sequential solver on {}",
            job.name
        );
    }

    for shards in [1usize, 3] {
        let handle = server(shards, 64);
        let mut client = Client::connect(handle.addr()).expect("connect");
        let reports = client.solve_batch(&jobs).expect("batch solves");
        assert_eq!(reports.len(), jobs.len());
        for (report, (job, want)) in reports.iter().zip(jobs.iter().zip(&in_process)) {
            assert_eq!(report.name, job.name, "order preserved");
            assert_eq!(
                report.canonical_text(),
                *want,
                "{} over the socket at {shards} shard(s) diverged",
                job.name
            );
            assert!(report.shard < shards);
        }
        // Content routing: the re-submitted module repeats its original's
        // fingerprint and shard, and solves as a pure cache hit.
        let (first, resub) = (&reports[0], reports.last().unwrap());
        assert_eq!(first.fingerprint, resub.fingerprint);
        assert_eq!(first.shard, resub.shard, "same content, same shard");
        assert_eq!(resub.stats.cache_misses, 0, "warm path must not re-solve");
        handle.shutdown();
    }
}

#[test]
fn repeat_submissions_are_warm_on_every_shard_count() {
    let jobs = corpus();
    for shards in [1usize, 2] {
        let handle = server(shards, 64);
        let mut client = Client::connect(handle.addr()).expect("connect");
        let cold = client.solve_batch(&jobs).expect("cold batch");
        let warm = client.solve_batch(&jobs).expect("warm batch");
        for (c, w) in cold.iter().zip(&warm) {
            assert_eq!(c.canonical_text(), w.canonical_text(), "{}", c.name);
            assert_eq!(w.stats.cache_misses, 0, "{} warm re-solve", w.name);
        }
        let stats = client.stats().expect("stats");
        let total_jobs: u64 = stats.shards.iter().map(|s| s.jobs).sum();
        assert_eq!(total_jobs, 2 * jobs.len() as u64);
        handle.shutdown();
    }
}

#[test]
fn overload_returns_overloaded_not_a_hang() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    let jobs = corpus();
    let n = jobs.len();
    // Admission budget equal to one batch: two batches cannot be in flight
    // at once, so contention from a second client must surface as an
    // immediate `Overloaded` (never a hang, never partial admission).
    let handle = server(1, n);
    let stop = Arc::new(AtomicBool::new(false));
    let looper = {
        let jobs = jobs.clone();
        let addr = handle.addr();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut c = Client::connect(addr).expect("looper connects");
            while !stop.load(Ordering::Relaxed) {
                match c.solve_batch(&jobs) {
                    Ok(_) | Err(ClientError::Overloaded { .. }) => {}
                    other => panic!("looper expected Solved or Overloaded, got {other:?}"),
                }
            }
        })
    };
    let mut client = Client::connect(handle.addr()).expect("connect");
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut refusal = None;
    while Instant::now() < deadline {
        match client.solve_batch(&jobs) {
            Err(ClientError::Overloaded { queued, limit }) => {
                refusal = Some((queued, limit));
                break;
            }
            Ok(reports) => assert_eq!(reports.len(), n),
            other => panic!("expected Solved or Overloaded, got {other:?}"),
        }
    }
    stop.store(true, Ordering::Relaxed);
    looper.join().expect("looper thread");
    let (queued, limit) = refusal.expect("contention never produced Overloaded");
    assert_eq!(limit, n);
    assert!(queued >= 1 && queued <= limit, "refused with {queued} in flight");
    // The refusal is accounted and the server still serves once the
    // contention is gone.
    let stats = client.stats().expect("stats");
    assert!(stats.rejected >= 1, "overload refusals are counted");
    let report = client.solve_module(&jobs[0]).expect("single module fits");
    assert_eq!(report.name, jobs[0].name);
    handle.shutdown();
}

#[test]
fn oversized_batch_is_a_permanent_error_not_overload() {
    let jobs = corpus();
    // A batch bigger than the whole admission budget can never be admitted:
    // that must be a permanent error naming the limit (an `Overloaded`
    // would send a retrying client into an infinite loop), and it must not
    // be counted as overload pressure.
    let handle = server(2, jobs.len() - 1);
    let mut client = Client::connect(handle.addr()).expect("connect");
    match client.solve_batch(&jobs) {
        Err(ClientError::Server(m)) => {
            assert!(
                m.contains(&format!("admission limit of {}", jobs.len() - 1)),
                "error names the limit: {m}"
            );
        }
        other => panic!("expected a permanent server error, got {other:?}"),
    }
    let stats = client.stats().expect("stats");
    assert_eq!(stats.rejected, 0, "not an overload rejection");
    assert_eq!(stats.queued, 0, "no partial admission leaked");
    let report = client.solve_module(&jobs[0]).expect("single module fits");
    assert_eq!(report.name, jobs[0].name);
    handle.shutdown();
}

#[test]
fn shutdown_drains_gracefully() {
    let jobs = corpus();
    let handle = server(2, 64);
    let mut client = Client::connect(handle.addr()).expect("connect");
    // Work submitted before the drain completes normally.
    let reports = client.solve_batch(&jobs).expect("pre-drain batch");
    assert_eq!(reports.len(), jobs.len());
    client.shutdown().expect("shutdown acknowledged");
    // Post-drain work is refused, not hung.
    match client.solve_module(&jobs[0]) {
        Err(ClientError::ShuttingDown) => {}
        other => panic!("expected ShuttingDown, got {other:?}"),
    }
    // All server threads exit.
    handle.join();
}
