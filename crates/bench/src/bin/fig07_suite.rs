//! Figure 7: the benchmark suite (name, description, instruction count).

use retypd_bench::{clusters, generate_single, SINGLES};
use retypd_minic::codegen::compile;
use retypd_minic::genprog::ProgramGenerator;

fn main() {
    println!("Figure 7: benchmark suite");
    println!("{:<20} {:<28} {:>12}", "Benchmark", "Description", "Instructions");
    println!("{}", "-".repeat(62));
    for spec in SINGLES {
        let module = generate_single(spec);
        let (mir, _) = compile(&module).expect("suite compiles");
        println!(
            "{:<20} {:<28} {:>12}",
            spec.name,
            spec.description,
            mir.instruction_count()
        );
    }
    println!("\nClusters (Figure 10 rows):");
    println!("{:<20} {:>8} {:>16}", "Cluster", "Members", "Avg instructions");
    println!("{}", "-".repeat(48));
    for spec in clusters() {
        let members = ProgramGenerator::generate_cluster(&spec);
        let mut total = 0usize;
        let n = members.len();
        for (_, m) in members {
            let (mir, _) = compile(&m).expect("cluster member compiles");
            total += mir.instruction_count();
        }
        println!("{:<20} {:>8} {:>16}", spec.name, n, total / n.max(1));
    }
}
