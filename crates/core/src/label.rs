//! Field labels (type capabilities) — the alphabet Σ of Table 1.
//!
//! A derived type variable is a base variable followed by a word of field
//! labels; each label records one *capability* of the type:
//!
//! | label      | variance | capability                              |
//! |------------|----------|-----------------------------------------|
//! | `.in_L`    | ⊖        | function with input in location `L`     |
//! | `.out_L`   | ⊕        | function with output in location `L`    |
//! | `.load`    | ⊕        | readable pointer                        |
//! | `.store`   | ⊖        | writable pointer                        |
//! | `.σN@k`    | ⊕        | has an `N`-bit field at offset `k`      |

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::intern::Symbol;
use crate::variance::Variance;

/// A parameter or return-value location used by `.in_L` / `.out_L` labels.
///
/// Locations abstract over the calling convention: a stack slot at a byte
/// offset in the incoming parameter area, or a named register.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum Loc {
    /// Parameter passed on the stack at the given byte offset (0, 4, 8, …).
    Stack(u32),
    /// Parameter or result passed in the named register.
    Reg(#[serde(with = "symbol_serde")] Symbol),
}

impl Loc {
    /// Convenience constructor for a register location.
    pub fn reg(name: &str) -> Loc {
        Loc::Reg(Symbol::intern(name))
    }

    /// Convenience constructor for a stack location.
    pub fn stack(offset: u32) -> Loc {
        Loc::Stack(offset)
    }
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Loc::Stack(k) => write!(f, "stack{k}"),
            Loc::Reg(r) => write!(f, "{r}"),
        }
    }
}

// With the offline no-op serde shim the derive ignores `#[serde(with)]`,
// leaving these helpers uncalled; the real serde derive wires them up.
#[allow(dead_code)]
mod symbol_serde {
    use serde::{Deserialize, Deserializer, Serialize, Serializer};

    use crate::intern::Symbol;

    pub fn serialize<S: Serializer>(sym: &Symbol, ser: S) -> Result<S::Ok, S::Error> {
        sym.as_str().serialize(ser)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(de: D) -> Result<Symbol, D::Error> {
        let s = String::deserialize(de)?;
        Ok(Symbol::intern(&s))
    }
}

/// A field label (element of the alphabet Σ, Table 1 of the paper).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum Label {
    /// `.in_L` — the function-input capability at location `L`. Contravariant.
    In(Loc),
    /// `.out_L` — the function-output capability at location `L`. Covariant.
    Out(Loc),
    /// `.load` — the readable-pointer capability. Covariant.
    Load,
    /// `.store` — the writable-pointer capability. Contravariant.
    Store,
    /// `.σN@k` — an `N`-bit field at byte offset `k`. Covariant.
    Sigma {
        /// Field width in bits.
        bits: u16,
        /// Byte offset of the field within the pointed-to cell.
        offset: i32,
    },
}

impl Label {
    /// The variance `⟨ℓ⟩` of this label (Table 1).
    pub fn variance(self) -> Variance {
        match self {
            Label::In(_) | Label::Store => Variance::Contravariant,
            Label::Out(_) | Label::Load | Label::Sigma { .. } => Variance::Covariant,
        }
    }

    /// Constructs the `.in_stackK` label used by the cdecl convention.
    pub fn in_stack(offset: u32) -> Label {
        Label::In(Loc::Stack(offset))
    }

    /// Constructs an `.in_REG` label for register parameters.
    pub fn in_reg(name: &str) -> Label {
        Label::In(Loc::reg(name))
    }

    /// Constructs the `.out_REG` label (`.out_eax` by convention on x86).
    pub fn out_reg(name: &str) -> Label {
        Label::Out(Loc::reg(name))
    }

    /// Constructs a `.σN@k` field label.
    pub fn sigma(bits: u16, offset: i32) -> Label {
        Label::Sigma { bits, offset }
    }

    /// True for `.load` / `.store` (pointer capabilities).
    pub fn is_pointer_access(self) -> bool {
        matches!(self, Label::Load | Label::Store)
    }
}

/// Computes the variance `⟨w⟩` of a word of labels (Definition 3.2).
///
/// The empty word is covariant; otherwise variances compose in the sign
/// monoid.
///
/// ```
/// use retypd_core::{word_variance, Label, Variance};
/// let w = [Label::Store, Label::sigma(32, 0)];
/// assert_eq!(word_variance(&w), Variance::Contravariant);
/// ```
pub fn word_variance(word: &[Label]) -> Variance {
    word.iter()
        .fold(Variance::Covariant, |acc, l| acc * l.variance())
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Label::In(loc) => write!(f, "in_{loc}"),
            Label::Out(loc) => write!(f, "out_{loc}"),
            Label::Load => f.write_str("load"),
            Label::Store => f.write_str("store"),
            Label::Sigma { bits, offset } => write!(f, "σ{bits}@{offset}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_variances() {
        assert_eq!(Label::in_stack(0).variance(), Variance::Contravariant);
        assert_eq!(Label::out_reg("eax").variance(), Variance::Covariant);
        assert_eq!(Label::Load.variance(), Variance::Covariant);
        assert_eq!(Label::Store.variance(), Variance::Contravariant);
        assert_eq!(Label::sigma(32, 4).variance(), Variance::Covariant);
    }

    #[test]
    fn word_variance_composes() {
        assert_eq!(word_variance(&[]), Variance::Covariant);
        assert_eq!(
            word_variance(&[Label::Load, Label::sigma(32, 0)]),
            Variance::Covariant
        );
        assert_eq!(
            word_variance(&[Label::Store, Label::Store]),
            Variance::Covariant
        );
        assert_eq!(
            word_variance(&[Label::in_stack(0), Label::Load]),
            Variance::Contravariant
        );
    }

    #[test]
    fn display_forms() {
        assert_eq!(Label::in_stack(0).to_string(), "in_stack0");
        assert_eq!(Label::out_reg("eax").to_string(), "out_eax");
        assert_eq!(Label::sigma(32, 4).to_string(), "σ32@4");
        assert_eq!(Label::Load.to_string(), "load");
        assert_eq!(Label::Store.to_string(), "store");
    }

    #[test]
    fn labels_are_ordered() {
        // Ordering is only required to be total and deterministic.
        let mut v = vec![Label::Store, Label::Load, Label::sigma(8, 0)];
        v.sort();
        let mut w = v.clone();
        w.sort();
        assert_eq!(v, w);
    }
}
