//! Full pipeline on a "binary": compile mini-C source with the
//! type-erasing compiler, run the analyses and constraint generation on
//! the machine code, infer types, and compare against the source.
//!
//! ```text
//! cargo run --example decompile_binary
//! ```

use retypd::core::{CTypeBuilder, Lattice, Solver, Symbol};
use retypd::minic::codegen::compile;
use retypd::minic::parse_module;

fn main() {
    let src = "
        struct node { struct node* next; int weight; char* name; };

        // Walk a list, summing weights (const: the list is only read).
        int total(const struct node* list) {
            int sum = 0;
            while (list != 0) {
                sum = sum + list->weight;
                list = list->next;
            }
            return sum;
        }

        // Allocate and NULL-initialize a node.
        struct node* make_node(int weight) {
            struct node* n = (struct node*) malloc(12);
            n->next = 0;
            n->weight = weight;
            n->name = 0;
            return n;
        }

        int main_like() {
            struct node* n = make_node(5);
            return total(n);
        }
    ";
    let module = parse_module(src).expect("source parses");
    let (mir, truth) = compile(&module).expect("source compiles");
    println!("=== stripped binary ({} instructions) ===", mir.instruction_count());
    println!("{mir}");

    let program = retypd::congen::generate(&mir);
    let lattice = Lattice::c_types();
    let result = Solver::new(&lattice).infer(&program);

    for f in ["total", "make_node", "main_like"] {
        let proc = &result.procs[&Symbol::intern(f)];
        println!("=== {f} ===");
        println!("scheme: {}", proc.scheme);
        if let Some(sk) = &proc.sketch {
            let mut builder = CTypeBuilder::new(&lattice);
            let sig = builder.function_type(sk);
            let table = builder.into_table();
            print!("{}", table.render());
            println!(
                "inferred:  {};",
                retypd::core::ctype::render_signature(f, &sig, &table)
            );
        }
        let ft = truth.func(f).expect("truth recorded");
        let params: Vec<String> = ft.params.iter().map(|p| p.ty.to_string()).collect();
        println!(
            "declared:  {} {f}({});\n",
            ft.ret.as_ref().map(|t| t.to_string()).unwrap_or("void".into()),
            params.join(", ")
        );
    }
}
